"""RC reliability layer: retransmission, NAK/RNR recovery, retry exhaustion.

These tests drive the :class:`repro.verbs.reliability.ReliabilityEngine`
directly through a device pair, below the EXS stack, so each recovery path
can be exercised in isolation (the chaos suite covers the full stack).
"""

import pytest

from repro.hosts import Host
from repro.simnet import FaultProfile, ImpairmentModel, Link
from repro.verbs import (
    SGE,
    Opcode,
    QPState,
    RecvWR,
    ReliabilityConfig,
    SendWR,
    WCOpcode,
    WCStatus,
    connect_devices,
)
from repro.verbs.device import DeviceConfig


FAST_RETRY = ReliabilityConfig(
    retry_timeout_ns=50_000,
    retry_cnt=3,
    rnr_retry=5,
    rnr_timeout_ns=30_000,
)


class RelPair:
    """Two connected devices with reliability enabled and an impaired link."""

    def __init__(self, sim, *, impairment=None, config=FAST_RETRY):
        self.sim = sim
        self.ha, self.hb = Host(sim, "a"), Host(sim, "b")
        self.link = Link(sim, bandwidth_bps=8e9, propagation_delay_ns=100,
                         per_message_overhead_ns=0, impairment=impairment)
        dev_cfg = DeviceConfig(reliability=config)
        self.da, self.db = connect_devices(sim, self.ha, self.hb, self.link,
                                           config_a=dev_cfg, config_b=dev_cfg)
        self.cq_a = self.da.create_cq()
        self.cq_b = self.db.create_cq()
        self.qa = self.da.create_qp(self.cq_a, self.cq_a)
        self.qb = self.db.create_qp(self.cq_b, self.cq_b)
        self.qa.connect(self.qb.qpn)
        self.qb.connect(self.qa.qpn)
        self.buf_a = self.ha.alloc(4096)
        self.buf_b = self.hb.alloc(4096)
        self.mr_a = self.da.register(self.buf_a)
        self.mr_b = self.db.register(self.buf_b)

    def post_send(self, nbytes, wr_id=1, opcode=Opcode.SEND):
        self.qa.post_send(SendWR(opcode=opcode, wr_id=wr_id,
                                 sge=SGE(self.mr_a.addr, nbytes, self.mr_a.lkey)))

    def post_recv(self, wr_id=100):
        self.qb.post_recv(RecvWR(wr_id=wr_id,
                                 sge=SGE(self.mr_b.addr, 4096, self.mr_b.lkey)))


def test_retransmit_recovers_from_outage(sim):
    """A send transmitted into a link outage is delivered by the timer."""
    imp = ImpairmentModel(FaultProfile(), seed=1, down_windows=((0, 60_000),))
    pair = RelPair(sim, impairment=imp)
    pair.buf_a.fill(b"retry-me")
    pair.post_recv()
    pair.post_send(8)
    sim.run()

    wcs_a = pair.cq_a.poll()
    assert [w.status for w in wcs_a] == [WCStatus.SUCCESS]
    wcs_b = pair.cq_b.poll()
    assert len(wcs_b) == 1 and wcs_b[0].opcode is WCOpcode.RECV
    assert pair.buf_b.read(0, 8) == b"retry-me"
    assert imp.down_dropped_total >= 1
    stats = pair.da.reliability.stats
    assert stats.timeouts >= 1
    assert stats.retransmits >= 1
    assert stats.recoveries >= 1
    assert stats.recovery_ns_max > 0


def test_retry_exhaustion_moves_qp_to_error(sim):
    """A permanently dead link exhausts retry_cnt: requester flushes with
    RETRY_EXC_ERR and the (fault-exempt) TERM flushes the responder."""
    imp = ImpairmentModel(FaultProfile(), seed=2,
                          down_windows=((0, 10**15),))
    pair = RelPair(sim, impairment=imp)
    pair.post_recv()
    pair.post_send(64)
    sim.run()

    wcs_a = pair.cq_a.poll()
    assert [w.status for w in wcs_a] == [WCStatus.RETRY_EXC_ERR]
    assert pair.qa.state is QPState.ERROR
    # peer learned of the teardown and flushed its posted RECV
    assert pair.qb.state is QPState.ERROR
    wcs_b = pair.cq_b.poll()
    assert [w.status for w in wcs_b] == [WCStatus.WR_FLUSH_ERR]
    stats = pair.da.reliability.stats
    assert stats.qp_fatal == 1
    assert stats.timeouts == FAST_RETRY.retry_cnt + 1


def test_rnr_nak_then_late_recv_recovers(sim):
    """SEND into an empty RQ draws an RNR NAK; once the responder posts a
    RECV, the paced retransmission delivers the data."""
    pair = RelPair(sim)
    pair.buf_a.fill(b"late-rq")
    pair.post_send(7)
    sim.call_in(45_000, pair.post_recv, 100)
    sim.run()

    wcs_a = pair.cq_a.poll()
    assert [w.status for w in wcs_a] == [WCStatus.SUCCESS]
    wcs_b = pair.cq_b.poll()
    assert len(wcs_b) == 1 and wcs_b[0].status is WCStatus.SUCCESS
    assert pair.buf_b.read(0, 7) == b"late-rq"
    assert pair.db.reliability.stats.rnr_naks_sent >= 1
    assert pair.da.reliability.stats.rnr_naks_received >= 1


def test_rnr_exhaustion_fails_with_rnr_retry_exc(sim):
    """If the responder never posts a RECV, rnr_retry bounds the attempts."""
    cfg = ReliabilityConfig(retry_timeout_ns=50_000, retry_cnt=3,
                            rnr_retry=1, rnr_timeout_ns=20_000)
    pair = RelPair(sim, config=cfg)
    pair.post_send(16)
    sim.run()

    wcs_a = pair.cq_a.poll()
    assert [w.status for w in wcs_a] == [WCStatus.RNR_RETRY_EXC_ERR]
    assert pair.qa.state is QPState.ERROR
    assert pair.da.reliability.stats.qp_fatal == 1


def test_duplicate_delivery_is_suppressed(sim):
    """duplicate_prob=1 delivers every frame twice; the sequence check at
    the responder accepts one copy and re-acks the other."""
    imp = ImpairmentModel(FaultProfile(duplicate_prob=1.0), seed=3)
    pair = RelPair(sim, impairment=imp)
    pair.buf_a.fill(b"once")
    pair.post_recv()
    pair.post_send(4)
    sim.run()

    assert [w.status for w in pair.cq_a.poll()] == [WCStatus.SUCCESS]
    wcs_b = pair.cq_b.poll()
    assert len(wcs_b) == 1          # exactly one delivery despite duplication
    assert imp.duplicated_total >= 1
    assert pair.db.reliability.stats.duplicates_dropped >= 1


def test_corrupt_frame_is_discarded_and_retried(sim):
    """A corrupt frame is dropped at the NIC and recovered by the timer."""
    imp = ImpairmentModel(FaultProfile(corrupt_prob=1.0),
                          FaultProfile(), seed=4)
    pair = RelPair(sim, impairment=imp)
    pair.buf_a.fill(b"clean")
    pair.post_recv()
    pair.post_send(5)
    # stop corrupting after the first transmission so the retry gets through
    sim.call_in(10_000, lambda _: imp.set_profile(0, FaultProfile()))
    sim.run()

    assert [w.status for w in pair.cq_a.poll()] == [WCStatus.SUCCESS]
    assert pair.buf_b.read(0, 5) == b"clean"
    assert pair.db.reliability.stats.corrupt_discarded >= 1
    assert pair.da.reliability.stats.retransmits >= 1


def test_flush_without_error_state_rejected(sim):
    from repro.verbs import QPStateError

    pair = RelPair(sim)
    with pytest.raises(QPStateError):
        pair.qa.flush(WCStatus.WR_FLUSH_ERR)


# ---------------------------------------------------------------------------
# selective repeat (SACK bitmap, OOO buffering, per-frame deadlines)
# ---------------------------------------------------------------------------

SR_CONFIG = ReliabilityConfig(
    retry_timeout_ns=50_000,
    retry_cnt=6,
    rnr_retry=5,
    rnr_timeout_ns=30_000,
    mode="selective_repeat",
)


def _blast(pair, n, nbytes=64):
    for i in range(n):
        pair.post_recv(wr_id=100 + i)
    for i in range(n):
        pair.post_send(nbytes, wr_id=1 + i)


def test_selective_repeat_buffers_out_of_order_and_releases(sim):
    """Frames behind a loss are buffered (not NAK-discarded) and released
    in order once the hole is filled; the requester learns of them via the
    SACK bitmap and completes everything in posting order."""
    imp = ImpairmentModel(FaultProfile(drop_prob=0.25), seed=11)
    pair = RelPair(sim, impairment=imp, config=SR_CONFIG)
    n = 20
    _blast(pair, n)
    sim.run()

    wcs_a = pair.cq_a.poll()
    assert [w.status for w in wcs_a] == [WCStatus.SUCCESS] * n
    assert [w.wr_id for w in wcs_a] == list(range(1, n + 1))  # in order
    assert len(pair.cq_b.poll()) == n
    assert imp.dropped_total > 0
    stats_b = pair.db.reliability.stats
    assert stats_b.ooo_buffered > 0
    assert stats_b.ooo_released > 0
    assert pair.da.reliability.stats.sacked_frames > 0


def _retransmits_for_mode(mode, seed=11):
    from repro.simnet import Simulator

    sim = Simulator()
    cfg = ReliabilityConfig(retry_timeout_ns=50_000, retry_cnt=6,
                            rnr_retry=5, rnr_timeout_ns=30_000, mode=mode)
    imp = ImpairmentModel(FaultProfile(drop_prob=0.25), seed=seed)
    pair = RelPair(sim, impairment=imp, config=cfg)
    n = 20
    _blast(pair, n)
    sim.run()
    assert [w.status for w in pair.cq_a.poll()] == [WCStatus.SUCCESS] * n
    assert len(pair.cq_b.poll()) == n
    assert imp.dropped_total > 0
    return pair.da.reliability.stats.retransmits


def test_selective_repeat_resends_no_more_than_gobackn():
    """Same drop pattern: selective repeat never resends more frames than
    go-back-N (it skips SACKed frames instead of replaying the window)."""
    assert _retransmits_for_mode("selective_repeat") <= _retransmits_for_mode("gobackn")


def test_selective_repeat_mode_rejects_unknown():
    with pytest.raises(ValueError):
        ReliabilityConfig(mode="stop-and-wait")


# ---------------------------------------------------------------------------
# RTO backoff clamping (regression: overflow after long outages)
# ---------------------------------------------------------------------------

def test_rto_backoff_clamped_at_max_rto(sim):
    """A huge attempt count must hit the cap, not overflow ``backoff**n``."""
    cfg = ReliabilityConfig(retry_timeout_ns=1_000, backoff=2.0,
                            max_rto_ns=500_000)
    pair = RelPair(sim, config=cfg)
    eng = pair.da.reliability
    st = eng._st(pair.qa)
    st.attempts = 10_000  # 2**10_000 would overflow float64
    assert eng._current_rto(st) == 500_000
    st.attempts = 3
    assert eng._current_rto(st) == 8_000  # below the cap: plain backoff


def test_rto_cap_defaults_to_max_timeout(sim):
    cfg = ReliabilityConfig(retry_timeout_ns=1_000, backoff=2.0,
                            max_timeout_ns=64_000)
    pair = RelPair(sim, config=cfg)
    eng = pair.da.reliability
    st = eng._st(pair.qa)
    st.attempts = 10_000
    assert eng._current_rto(st) == 64_000


def test_rto_cap_must_be_positive():
    with pytest.raises(ValueError):
        ReliabilityConfig(max_rto_ns=0)


# ---------------------------------------------------------------------------
# stale cumulative ACK/NAK handling (regression: timer resets on dup ACKs)
# ---------------------------------------------------------------------------

def test_stale_cumulative_ack_is_ignored(sim):
    """A replayed ACK at or below the acked point completes nothing and
    must not reset the attempt counters (which would starve the timer)."""
    pair = RelPair(sim)
    pair.post_recv()
    pair.post_send(8)
    sim.run()
    eng = pair.da.reliability
    st = eng._st(pair.qa)
    acked = st.highest_acked
    assert acked >= 0
    st.attempts = 2  # pretend we are mid-recovery
    assert eng.on_ack(pair.qa, acked) == []
    assert eng.on_ack(pair.qa, acked - 1) == []
    assert eng.stats.stale_acks_ignored == 2
    assert st.attempts == 2  # stale frames carry no progress


def test_stale_nak_does_not_trigger_retransmit(sim):
    pair = RelPair(sim)
    pair.post_recv()
    pair.post_send(8)
    sim.run()
    eng = pair.da.reliability
    st = eng._st(pair.qa)
    before = eng.stats.retransmits
    assert eng.on_nak(pair.qa, st.highest_acked - 1) == []
    assert eng.stats.retransmits == before
    assert eng.stats.stale_acks_ignored == 1


def test_stale_rnr_does_not_consume_retry_budget(sim):
    pair = RelPair(sim)
    pair.post_recv()
    pair.post_send(8)
    sim.run()
    eng = pair.da.reliability
    st = eng._st(pair.qa)
    assert eng.on_rnr(pair.qa, st.highest_acked - 1) == []
    assert st.rnr_attempts == 0
    assert eng.stats.stale_acks_ignored == 1


@pytest.mark.parametrize("mode", ["gobackn", "selective_repeat"])
def test_duplicate_ack_chaos_completes_and_ignores_stale_frames(sim, mode):
    """duplicate_prob=1 re-delivers every data frame; each duplicate is
    re-ACKed with an old msn, and the requester must shrug those off while
    still completing every send exactly once."""
    cfg = ReliabilityConfig(retry_timeout_ns=50_000, retry_cnt=6,
                            rnr_retry=5, rnr_timeout_ns=30_000, mode=mode)
    imp = ImpairmentModel(FaultProfile(duplicate_prob=1.0), seed=5)
    pair = RelPair(sim, impairment=imp, config=cfg)
    n = 8
    _blast(pair, n, nbytes=32)
    sim.run()

    assert [w.status for w in pair.cq_a.poll()] == [WCStatus.SUCCESS] * n
    assert len(pair.cq_b.poll()) == n
    assert imp.duplicated_total > 0
    assert pair.db.reliability.stats.duplicates_dropped > 0
    assert pair.da.reliability.stats.stale_acks_ignored > 0
