"""Analytic bounds, and their agreement with the simulator."""

import pytest

from repro.analysis import (
    copy_rate_bound_bps,
    expected_winner,
    window_bound_bps,
    wire_rate_bound_bps,
)
from repro.apps import BlastConfig, FixedSizes, run_blast
from repro.bench.profiles import FDR_INFINIBAND, QDR_INFINIBAND, ROCE_10G_WAN
from repro.core import ProtocolMode


def test_wire_rate_bound_approaches_link_rate_for_large_messages():
    bound = wire_rate_bound_bps(FDR_INFINIBAND, 1 << 20)
    assert 0.9 * 47e9 < bound < 47e9


def test_wire_rate_bound_collapses_for_tiny_messages():
    assert wire_rate_bound_bps(FDR_INFINIBAND, 64) < 5e9


def test_large_message_penalty_lowers_bound():
    at_2m = wire_rate_bound_bps(FDR_INFINIBAND, 2 << 20)
    at_32m = wire_rate_bound_bps(FDR_INFINIBAND, 32 << 20)
    assert at_32m < at_2m


def test_copy_bound_tracks_memcpy_rate():
    bound = copy_rate_bound_bps(FDR_INFINIBAND, 1 << 20)
    assert 0.8 * FDR_INFINIBAND.copy_bandwidth_bps < bound <= FDR_INFINIBAND.copy_bandwidth_bps


def test_window_bound():
    # 4 x 1 MiB per 48 ms
    bound = window_bound_bps(4, 1 << 20, 48_000_000)
    assert bound == pytest.approx(4 * (1 << 20) * 8 / 48e-3, rel=1e-6)
    assert window_bound_bps(4, 1024, 0) == float("inf")


def test_expected_winners_per_profile():
    assert expected_winner(FDR_INFINIBAND) == "direct"
    assert expected_winner(QDR_INFINIBAND) == "tie"  # the paper's QDR remark
    assert expected_winner(ROCE_10G_WAN, rtt_ns=48_000_000) == "tie"


def test_simulation_respects_wire_bound():
    cfg = BlastConfig(total_messages=40, sizes=FixedSizes(1 << 20),
                      recv_buffer_bytes=1 << 20, outstanding_sends=8,
                      outstanding_recvs=16, mode=ProtocolMode.DIRECT_ONLY)
    r = run_blast(cfg, seed=1, max_events=50_000_000)
    bound = wire_rate_bound_bps(FDR_INFINIBAND, 1 << 20)
    assert r.throughput_bps <= bound * 1.01
    assert r.throughput_bps >= bound * 0.8  # and saturates most of it


def test_simulation_respects_copy_bound():
    cfg = BlastConfig(total_messages=40, sizes=FixedSizes(1 << 20),
                      recv_buffer_bytes=1 << 20, outstanding_sends=8,
                      outstanding_recvs=8, mode=ProtocolMode.INDIRECT_ONLY)
    r = run_blast(cfg, seed=1, max_events=50_000_000)
    bound = copy_rate_bound_bps(FDR_INFINIBAND, 1 << 20)
    assert r.throughput_bps <= bound * 1.05


def test_simulation_respects_window_bound_over_wan():
    from repro.exs import ExsSocketOptions

    cfg = BlastConfig(total_messages=30, sizes=FixedSizes(1 << 20),
                      recv_buffer_bytes=1 << 20, outstanding_sends=4,
                      outstanding_recvs=4, mode=ProtocolMode.DIRECT_ONLY,
                      options=ExsSocketOptions(ring_capacity=64 << 20))
    r = run_blast(cfg, ROCE_10G_WAN, seed=1, max_events=50_000_000)
    bound = window_bound_bps(4, 1 << 20, 48_000_000)
    assert r.throughput_bps <= bound * 1.02
    assert r.throughput_bps >= bound * 0.7
