"""The advert-race model, validated against full simulations."""

import pytest

from repro.analysis import ModePrediction, predict_mode
from repro.analysis.advert_race import jitter_spread_ns, structural_lag_ns
from repro.apps import BlastConfig, FixedSizes, run_blast
from repro.bench.profiles import FDR_INFINIBAND
from repro.core import ProtocolMode

KIB = 1024
MIB = 1 << 20


def test_model_quantities_sane():
    lag = structural_lag_ns(FDR_INFINIBAND)
    spread = jitter_spread_ns(FDR_INFINIBAND)
    assert -5_000 < lag < 5_000       # sub-microsecond structural difference
    assert spread == 2 * (FDR_INFINIBAND.wakeup_hi_ns - FDR_INFINIBAND.wakeup_lo_ns)


def test_equal_outstanding_predicts_indirect():
    m = predict_mode(FDR_INFINIBAND, 4, 4, 1 * MIB)
    assert m.prediction is ModePrediction.INDIRECT
    assert m.slack_ns == 0


def test_large_messages_with_headroom_predict_direct():
    for size in (128 * KIB, 512 * KIB, 2 * MIB):
        m = predict_mode(FDR_INFINIBAND, 2, 4, size)
        assert m.prediction is ModePrediction.DIRECT, size


def test_mid_band_predicts_unstable():
    m = predict_mode(FDR_INFINIBAND, 2, 4, 32 * KIB)
    assert m.prediction is ModePrediction.UNSTABLE
    assert m.lag_lo_ns < m.slack_ns < m.lag_hi_ns


def test_tiny_messages_predict_batched():
    for size in (64, 512, 8 * KIB):
        m = predict_mode(FDR_INFINIBAND, 2, 4, size)
        assert m.prediction is ModePrediction.BATCHED, size


def test_validation_against_simulation():
    """The model's DIRECT/INDIRECT/UNSTABLE calls match measured ratios."""

    def measured_ratios(sends, recvs, size, seeds=(1, 2, 3)):
        out = []
        for seed in seeds:
            cfg = BlastConfig(
                total_messages=max(60, (32 * MIB) // size),
                sizes=FixedSizes(size),
                recv_buffer_bytes=size,
                outstanding_sends=sends,
                outstanding_recvs=recvs,
                mode=ProtocolMode.DYNAMIC,
            )
            out.append(run_blast(cfg, seed=seed, max_events=100_000_000).direct_ratio)
        return out

    cases = [
        (4, 4, 1 * MIB),      # INDIRECT
        (2, 4, 512 * KIB),    # DIRECT
        (2, 4, 32 * KIB),     # UNSTABLE
    ]
    for sends, recvs, size in cases:
        prediction = predict_mode(FDR_INFINIBAND, sends, recvs, size).prediction
        ratios = measured_ratios(sends, recvs, size)
        if prediction is ModePrediction.DIRECT:
            assert min(ratios) > 0.95, (size, ratios)
        elif prediction is ModePrediction.INDIRECT:
            assert max(ratios) < 0.25, (size, ratios)
        elif prediction is ModePrediction.UNSTABLE:
            assert (max(ratios) - min(ratios) > 0.1) or (0.2 < sum(ratios) / 3 < 0.98), (
                size, ratios,
            )


def test_validation_counts_are_inputs_checked():
    with pytest.raises(ValueError):
        predict_mode(FDR_INFINIBAND, 0, 4, 1024)
