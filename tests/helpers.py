"""Helpers shared across the test suite (importable via pytest pythonpath)."""

from __future__ import annotations

from repro.simnet import Simulator


def run_procs(sim: Simulator, *generators, max_events: int = 5_000_000):
    """Spawn each generator as a process, run to completion, return results.

    Raises if any process failed or if the simulation deadlocked with
    processes still alive.
    """
    procs = [sim.process(g, name=f"test-proc-{i}") for i, g in enumerate(generators)]
    sim.run(max_events=max_events)
    for p in procs:
        if not p.triggered:
            raise AssertionError(f"simulation deadlocked: {p.name} still alive at t={sim.now}")
    return [p.result() for p in procs]
