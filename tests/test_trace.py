"""Protocol tracer: event capture, timeline rendering, CSV export."""

import io

import pytest

from helpers import run_procs
from repro.apps import BlastConfig, PhasedSizes, FixedSizes, run_blast
from repro.core import ProtocolMode
from repro.core.stats import PHASE_TRACE_CAP, ProtocolStats
from repro.exs import BlockingSocket
from repro.testbed import Testbed
from repro.trace import (ProtocolTracer, TraceEvent, events_from_csv,
                         render_timeline, summarize)


def traced_run(seed=5):
    tb = Testbed(seed=seed)
    tracer = ProtocolTracer.attach(tb)
    out = {}

    def server():
        conn = yield from BlockingSocket.accept_one(tb.server, 4900)
        got = b""
        while len(got) < 120_000:
            got += yield from conn.recv_bytes(50_000)
        out["got"] = got

    def client():
        conn = yield from BlockingSocket.connect(tb.client, 4900)
        yield from conn.send_bytes(b"t" * 120_000)
        yield from conn.close()

    run_procs(tb.sim, server(), client(), max_events=20_000_000)
    return tracer


def test_tracer_captures_transfer_events():
    tracer = traced_run()
    kinds = {e.kind for e in tracer.events}
    # a synchronous exchange goes indirect, with copies, acks and a FIN
    assert "indirect" in kinds
    assert "copy" in kinds
    assert "ring_ack" in kinds
    assert "fin" in kinds
    assert "advert_tx" in kinds  # receiver advertised (even if late)
    times = [e.time_ns for e in tracer.events]
    assert times == sorted(times)


def test_trace_event_fields_accessible():
    tracer = traced_run()
    transfer = tracer.of_kind("indirect")[0]
    assert transfer.get("nbytes") > 0
    assert transfer.get("seq") is not None
    assert transfer.get("missing", "dflt") == "dflt"


def test_phase_trace_recorded_in_stats():
    tb = Testbed(seed=5)
    ProtocolTracer.attach(tb)
    cfg = BlastConfig(
        total_messages=40,
        sizes=PhasedSizes([(FixedSizes(1 << 20), 10), (FixedSizes(32 << 10), 20),
                           (FixedSizes(1 << 20), 10)]),
        outstanding_sends=2, outstanding_recvs=4,
        recv_buffer_bytes=1 << 20,
    )
    r = run_blast(cfg, testbed=tb, seed=5, max_events=50_000_000)
    if r.mode_switches:
        trace = r.tx_stats.phase_trace
        assert len(trace) >= r.mode_switches
        phases = [p for _t, p in trace]
        assert phases == sorted(phases)  # monotone
        times = [t for t, _p in trace]
        assert times == sorted(times)


def test_timeline_rendering():
    tracer = traced_run()
    art = render_timeline(tracer, width=40)
    assert "timeline" in art
    assert "|" in art and ("I" in art or "D" in art)
    # an empty tracer renders gracefully
    assert render_timeline(ProtocolTracer()) == "(no transfers recorded)"


def test_summarize_counts():
    tracer = traced_run()
    text = summarize(tracer)
    assert "conn" in text and "copy=" in text


def test_csv_export():
    tracer = traced_run()
    buf = io.StringIO()
    n = tracer.to_csv(buf)
    lines = buf.getvalue().strip().splitlines()
    assert len(lines) == n + 1  # header + rows
    assert lines[0].startswith("time_ns,conn,host,kind")


def test_csv_round_trip():
    tracer = traced_run()
    # adversarial values: the old "k=v;k=v" packing corrupted on these
    tracer.emit(999_999, 9, "client", "note", label="a=b;c=d", text='quote"me')
    buf = io.StringIO()
    tracer.to_csv(buf)
    buf.seek(0)
    events = events_from_csv(buf)
    assert events == tracer.events
    noted = [e for e in events if e.kind == "note"][0]
    assert noted.get("label") == "a=b;c=d"
    assert noted.get("text") == 'quote"me'


def test_csv_rejects_foreign_header():
    with pytest.raises(ValueError):
        events_from_csv(io.StringIO("a,b,c\n1,2,3\n"))


def test_summarize_reports_bytes_and_direct_ratio():
    tracer = ProtocolTracer()
    tracer.emit(10, 1, "client", "direct", nbytes=3000, seq=0)
    tracer.emit(20, 1, "client", "indirect", nbytes=1000, seq=3000)
    text = summarize(tracer)
    assert "direct=3000" in text
    assert "indirect=1000" in text
    assert "total=4000" in text
    assert "direct_ratio=0.500" in text


def test_timeline_single_timestamp_does_not_divide_by_zero():
    tracer = ProtocolTracer()
    for conn in (1, 2):
        tracer.emit(5_000, conn, "client", "direct", nbytes=64, seq=0)
    art = render_timeline(tracer, width=16)
    assert "D" in art
    assert "0.000 ms" in art  # span clamped to 1 ns, not a ZeroDivisionError


def test_capacity_drops_are_counted():
    tracer = ProtocolTracer(capacity=2)
    for i in range(5):
        tracer.emit(i, 1, "h", "direct", nbytes=1)
    assert len(tracer.events) == 2
    assert tracer.dropped == 3


def test_phase_trace_is_bounded():
    stats = ProtocolStats()
    for i in range(PHASE_TRACE_CAP + 25):
        stats.note_phase(i, i % 2)
    assert len(stats.phase_trace) == PHASE_TRACE_CAP
    assert stats.phase_trace_dropped == 25
    # oldest entries were the ones evicted
    assert stats.phase_trace[0][0] == 25
    assert stats.phase_trace[-1][0] == PHASE_TRACE_CAP + 24


def test_summarize_reliability_section_on_lossy_run():
    """A lossy blast must surface the reliability kinds; a clean run must
    not grow the section at all."""
    from repro.config import ScenarioConfig
    from repro.simnet import HEAVY_LOSS

    scenario = ScenarioConfig(seed=1, faults=HEAVY_LOSS, max_events=400_000_000)
    tb = Testbed.from_scenario(scenario)
    tracer = ProtocolTracer.attach(tb)
    run_blast(BlastConfig(total_messages=25, sizes=FixedSizes(48_000)),
              testbed=tb, scenario=scenario)
    text = summarize(tracer)
    assert "reliability events:" in text
    assert "totals:" in text
    assert "retransmit=" in text or "nak=" in text
    assert "messages retransmitted:" in text

    clean = summarize(traced_run())
    assert "reliability events:" not in clean


def test_connections_listing():
    tracer = traced_run()
    conns = tracer.connections()
    hosts = {host for _c, host in conns}
    assert hosts == {"client", "server"}
