"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.config import ScenarioConfig
from repro.simnet import Simulator
from repro.testbed import Testbed


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def testbed() -> Testbed:
    return Testbed.from_scenario(ScenarioConfig(seed=1))
