"""Micro-scale end-to-end runs of the figure runners and the CLI."""

import pytest

from repro.bench.experiment import RunQuality
from repro.bench.figures import FigureData, fig9a, fig12, replace_id, table3
from repro.bench.__main__ import main as bench_main

MICRO = RunQuality("micro", messages=25, seeds=(1,), bytes_budget=2 * 1024 * 1024)


def test_fig9a_micro_structure():
    fd = fig9a(MICRO)
    assert isinstance(fd, FigureData)
    assert fd.xs == [1, 2, 4, 8, 16, 32]
    assert set(fd.series) == {"direct", "dynamic", "indirect"}
    assert all(len(aggs) == len(fd.xs) for aggs in fd.series.values())
    text = fd.text("throughput")
    assert "fig9a" in text and "Gb/s" in text
    # metric accessors
    thr = fd.throughputs_gbps("direct")
    assert len(thr) == 6 and all(t > 0 for t in thr)


def test_fig12_micro_and_metrics():
    fd = fig12(MICRO, sizes=(4096, 65536))
    assert fd.xs == ["4KiB", "64KiB"]
    ratios = fd.metric("dynamic", lambda a: a.direct_ratio.mean)
    assert all(0.0 <= r <= 1.0 for r in ratios)
    assert "ratio" in fd.text("ratio") or "±" in fd.text("ratio")


def test_table3_micro():
    rows, text = table3(MICRO)
    assert len(rows) == 11
    assert "Table III" in text


def test_replace_id():
    fd = fig12(MICRO, sizes=(4096,))
    fd2 = replace_id(fd, "figX", "renamed")
    assert fd2.figure_id == "figX" and fd2.series is fd.series


def test_cli_list(capsys):
    assert bench_main(["--list"]) == 0
    out = capsys.readouterr().out
    assert "fig9a" in out and "table3" in out


def test_cli_unknown_artifact():
    with pytest.raises(SystemExit):
        bench_main(["not-a-figure"])


def test_cli_runs_one_artifact(capsys, monkeypatch):
    # shrink the built-in qualities so the CLI test is fast
    import repro.bench.__main__ as cli

    monkeypatch.setitem(cli.QUALITIES, "smoke", MICRO)
    assert bench_main(["table3", "--quality", "smoke"]) == 0
    out = capsys.readouterr().out
    assert "Table III" in out and "done in" in out
