"""Hardware profiles and the experiment harness."""

import pytest

from repro.apps import BlastConfig, FixedSizes
from repro.bench.experiment import (
    PAPER,
    QUICK,
    SMOKE,
    RunQuality,
    quality_from_env,
    run_repeated,
)
from repro.bench.profiles import (
    FDR_INFINIBAND,
    PROFILES,
    QDR_INFINIBAND,
    ROCE_10G_WAN,
)
from repro.bench.report import format_series_table, format_table


def test_profiles_registry():
    assert set(PROFILES) == {"fdr", "roce-wan", "roce-lan", "qdr"}
    assert PROFILES["fdr"] is FDR_INFINIBAND


def test_profile_overrides_do_not_mutate():
    modified = FDR_INFINIBAND.with_overrides(link_bandwidth_bps=1e9)
    assert modified.link_bandwidth_bps == 1e9
    assert FDR_INFINIBAND.link_bandwidth_bps == 47e9
    assert modified.copy_bandwidth_bps == FDR_INFINIBAND.copy_bandwidth_bps


def test_wan_profile_delay():
    assert ROCE_10G_WAN.emulator_delay_ns * 2 == 48_000_000  # 48 ms RTT


def test_qdr_is_slower_wire_than_fdr():
    assert QDR_INFINIBAND.link_bandwidth_bps < FDR_INFINIBAND.link_bandwidth_bps


def test_quality_from_env(monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_QUALITY", "smoke")
    assert quality_from_env() is SMOKE
    monkeypatch.setenv("REPRO_BENCH_QUALITY", "paper")
    assert quality_from_env() is PAPER
    monkeypatch.setenv("REPRO_BENCH_QUALITY", "bogus")
    assert quality_from_env() is QUICK


def test_fixed_size_message_scaling():
    q = RunQuality("t", messages=100, seeds=(1,), bytes_budget=1000)
    assert q.fixed_size_messages(10, lo=5, hi=50) == 50
    assert q.fixed_size_messages(1000, lo=5, hi=50) == 5


def test_run_repeated_aggregates_each_seed():
    q = RunQuality("t", messages=10, seeds=(1, 2, 3))
    cfg = BlastConfig(total_messages=10, sizes=FixedSizes(1 << 16),
                      recv_buffer_bytes=1 << 16)
    agg = run_repeated(cfg, quality=q)
    assert agg.throughput_bps.n == 3
    assert len(agg.runs) == 3
    assert agg.throughput_gbps > 0
    # different wake-up seeds -> runs are not all identical
    values = {r.end_ns for r in agg.runs}
    assert len(values) > 1


def test_format_table_alignment():
    text = format_table(["a", "bb"], [[1, 22], [333, 4]], title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "a" in lines[1] and "bb" in lines[1]
    assert len(lines) == 5


def test_format_series_table():
    text = format_series_table("x", [1, 2], {"s1": ["a", "b"], "s2": ["c", "d"]})
    assert "s1" in text and "s2" in text
    assert text.count("\n") == 3
