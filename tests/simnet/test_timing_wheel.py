"""Timing-wheel calendar: heap equivalence, rollover/cascade edges, public API.

The wheel backend must be *observationally identical* to the flat-heap
fallback: same callback order, same clock readings, same values — for the
default FIFO order and for every :class:`SchedulePolicy`.  The property
tests here run one deterministic event soup through both backends and
compare complete trace fingerprints; the edge-case tests pin the wheel's
boundary behaviour (slot rollover, L1 cascade, overflow horizon, batch
interruption) where an off-by-one would hide from the soup.
"""

import pytest

from repro.simnet import Event, Simulator, Timeout
from repro.simnet import _accel
from repro.simnet._core import S0_SIZE, WHEEL_HORIZON
from repro.simnet.kernel import SimulationError
from repro.simnet.schedule import FifoPolicy, RandomTiebreakPolicy

BACKENDS = ("wheel", "heap")


@pytest.fixture
def sim():
    """Override the conftest fixture: these tests pin *wheel* behaviour,
    so they must not silently flip when REPRO_KERNEL=heap is exported
    (the fallback CI job runs the whole suite that way)."""
    return Simulator(calendar="wheel")


# ----------------------------------------------------------------------
# property test: identical fingerprints across backends
# ----------------------------------------------------------------------
def _lcg(seed):
    """Tiny deterministic PRNG; no dependence on Python's hash or random."""
    state = (seed * 2654435761) & 0x7FFFFFFF or 1
    while True:
        state = (state * 1103515245 + 12345) & 0x7FFFFFFF
        yield state


#: delay classes spanning every calendar tier: register/L0 (0..4095),
#: L1 (4096..horizon), overflow (>= horizon), and the exact boundaries
DELAYS = (
    0, 1, 3, 7, 100, 1000,
    S0_SIZE - 1, S0_SIZE, S0_SIZE + 1,
    17 * S0_SIZE, 100 * S0_SIZE,
    WHEEL_HORIZON - 1, WHEEL_HORIZON, WHEEL_HORIZON + 1,
    3 * WHEEL_HORIZON,
)


def _build_workload(sim, seed, log):
    """Deterministic event soup touching every scheduling surface.

    The single shared LCG is drawn from *at resume time*, so any ordering
    divergence between backends immediately derails every later draw —
    a small trace difference amplifies into a totally different run.
    """
    rnd = _lcg(seed)

    def chain_worker(wid):
        # dominant pattern: yield sim.timeout(...) chains (register + spin)
        for i in range(25):
            d = DELAYS[next(rnd) % len(DELAYS)]
            v = yield sim.timeout(d, value=(wid, i))
            log.append(("w", wid, i, v, sim.now))

    def burst_worker(wid):
        # same-instant bursts: schedule several events for one instant
        for i in range(8):
            base = next(rnd) % 5000
            evs = [sim.timeout(base) for _ in range(next(rnd) % 4 + 2)]
            for j, t in enumerate(evs):
                t.add_callback(
                    lambda e, wid=wid, i=i, j=j: log.append(("b", wid, i, j, sim.now)))
            yield evs[0]
            log.append(("bw", wid, i, sim.now))
            yield sim.timeout(next(rnd) % 64)

    for wid in range(6):
        sim.process(chain_worker(wid))
    for wid in range(3):
        sim.process(burst_worker(wid))
    # fire-and-forget deliveries across tiers, many same-instant collisions
    for i in range(60):
        d = (next(rnd) % 40) * 128
        sim.call_in(d, lambda arg: log.append(("cb",) + arg), (i, d))
    # manually triggered events with small delays (heavy collisions near 0)
    for i in range(30):
        ev = Event(sim)
        ev.add_callback(lambda e, i=i: log.append(("ev", i, e._value, sim.now)))
        ev.succeed(value=i, delay=next(rnd) % 3)


def _force_pure(sim):
    """Rebind a wheel simulator to its pure-Python paths.

    The C accelerator (see _accel.py) is a per-instance binding, so
    swapping the bound methods back *before any scheduling* yields the
    reference pure-Python behaviour on the same interpreter.
    """
    sim.timeout = sim._timeout_wheel
    sim._creg = None
    return sim


def _fingerprint(backend, policy, seed, force_pure=False):
    sim = Simulator(schedule_policy=policy, calendar=backend)
    if force_pure:
        _force_pure(sim)
    log = []
    _build_workload(sim, seed, log)
    sim.run()
    return tuple(log), sim.now, sim.events_executed


@pytest.mark.parametrize("seed", [1, 2, 3, 11, 29])
@pytest.mark.parametrize("policy_kind", [None, "fifo", "random"])
def test_wheel_matches_heap_fingerprint(seed, policy_kind):
    def make_policy():
        if policy_kind is None:
            return None
        if policy_kind == "fifo":
            return FifoPolicy()
        return RandomTiebreakPolicy(seed=seed * 7 + 5)

    wheel = _fingerprint("wheel", make_policy(), seed)
    heap = _fingerprint("heap", make_policy(), seed)
    assert wheel == heap


def test_fifo_policy_matches_no_policy_on_wheel():
    """FifoPolicy is the regression probe for the policy-mode wheel path."""
    assert _fingerprint("wheel", FifoPolicy(), 5) == _fingerprint("wheel", None, 5)


# ----------------------------------------------------------------------
# wheel boundary edge cases
# ----------------------------------------------------------------------
def test_rollover_slot_wraparound(sim):
    """Delays straddling the L0 window from a mid-slot clock must not alias.

    With now=4000, a delay of 96 lands in slot 0 of the *next* wrap —
    the classic timing-wheel aliasing bug if the window bound is wrong.
    """
    order = []

    def proc():
        yield sim.timeout(4000)
        for d in (S0_SIZE + 1, 95, S0_SIZE - 1, 96, 0, S0_SIZE, 97, 1):
            Timeout(sim, d).add_callback(lambda e, d=d: order.append((d, sim.now)))

    sim.process(proc())
    sim.run()
    assert order == [(d, 4000 + d) for d in (0, 1, 95, 96, 97,
                                             S0_SIZE - 1, S0_SIZE, S0_SIZE + 1)]


def test_far_future_cascade_and_horizon(sim):
    """L1 buckets cascade intact and overflow entries re-enter in order."""
    order = []
    delays = [WHEEL_HORIZON + 1, 10 * S0_SIZE + 7, WHEEL_HORIZON - 1, 3,
              WHEEL_HORIZON, 10 * S0_SIZE + 7, 5 * WHEEL_HORIZON]
    for i, d in enumerate(delays):
        Timeout(sim, d).add_callback(lambda e, i=i, d=d: order.append((i, d, sim.now)))
    sim.run()
    assert [o[2] for o in order] == sorted(d for d in delays)
    # the same-instant L1 pair keeps schedule order after its cascade
    pair = [o for o in order if o[1] == 10 * S0_SIZE + 7]
    assert [o[0] for o in pair] == [1, 5]
    stats = sim.calendar_stats()
    assert stats["cascades"] >= 1
    assert stats["l1_inserts"] >= 2
    assert stats["overflow_inserts"] >= 3


def test_cascade_preserves_fifo_against_direct_inserts(sim):
    """Entries cascading from L1 carry older seqs than direct L0 inserts.

    Schedule a far entry first (via L1), then — once the clock is close —
    a same-instant direct insert.  FIFO order is by schedule time, so the
    cascaded (older) entry must still fire first.
    """
    T = 8 * S0_SIZE + 123
    order = []
    Timeout(sim, T).add_callback(lambda e: order.append("old"))

    def late_scheduler():
        yield sim.timeout(T - 10)
        Timeout(sim, 10).add_callback(lambda e: order.append("new"))

    sim.process(late_scheduler())
    sim.run()
    assert order == ["old", "new"]


def test_run_until_mid_calendar_restores_tail(sim):
    fired = []
    for i, d in enumerate((100, 200, 200, 200, 300)):
        Timeout(sim, d).add_callback(lambda e, i=i: fired.append((i, sim.now)))
    sim.run(until=150)
    assert sim.now == 150
    assert fired == [(0, 100)]
    assert sim.peek_next_time() == 200
    sim.run()
    assert fired == [(0, 100), (1, 200), (2, 200), (3, 200), (4, 300)]


def test_max_events_mid_batch_preserves_order(sim):
    """Tripping max_events inside a same-instant batch must not lose or
    reorder the undispatched tail."""
    fired = []
    for i in range(6):
        Timeout(sim, 50).add_callback(lambda e, i=i: fired.append(i))
    with pytest.raises(SimulationError, match="max_events"):
        sim.run(max_events=3)
    assert fired == [0, 1, 2]
    sim.run()
    assert fired == [0, 1, 2, 3, 4, 5]


def test_schedule_into_live_batch_joins_it(sim):
    """An event scheduled for *now* from inside a batch fires in the same
    batch, after everything already in it — the flat heap's behaviour."""
    order = []

    def first(e):
        order.append("first")
        Timeout(sim, 0).add_callback(lambda e: order.append("joined"))

    Timeout(sim, 10).add_callback(first)
    Timeout(sim, 10).add_callback(lambda e: order.append("second"))
    sim.run()
    assert order == ["first", "second", "joined"]


def test_peek_inside_live_batch_reports_now(sim):
    seen = []
    Timeout(sim, 10).add_callback(lambda e: seen.append(sim.peek()))
    Timeout(sim, 10).add_callback(lambda e: None)
    Timeout(sim, 99).add_callback(lambda e: None)
    sim.run()
    # peeked during the t=10 batch with a peer still pending -> 10, not 99
    assert seen == [10]


def test_step_interleaves_with_run(sim):
    order = []
    for i in range(4):
        Timeout(sim, 5).add_callback(lambda e, i=i: order.append(i))
    Timeout(sim, 9).add_callback(lambda e: order.append("late"))
    sim.step()
    assert order == [0]
    assert sim.now == 5
    sim.step()
    assert order == [0, 1]
    sim.run()
    assert order == [0, 1, 2, 3, "late"]
    with pytest.raises(IndexError):
        sim.step()


# ----------------------------------------------------------------------
# public introspection API + backend selection
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", BACKENDS)
def test_calendar_stats_surface(backend):
    sim = Simulator(calendar=backend)
    stats = sim.calendar_stats()
    assert stats["backend"] == backend
    assert stats["pending"] == 0
    assert stats["next_time"] is None

    def proc():
        for _ in range(50):
            yield sim.timeout(7)

    sim.process(proc())
    Timeout(sim, 20 * S0_SIZE)
    Timeout(sim, 2 * WHEEL_HORIZON)
    assert sim.calendar_stats()["pending"] == 3
    assert sim.peek_next_time() == 0  # process bootstrap event
    sim.run()
    stats = sim.calendar_stats()
    assert stats["pending"] == 0
    assert stats["events_executed"] == sim.events_executed > 50
    if backend == "wheel":
        assert stats["l1_inserts"] >= 1
        assert stats["overflow_inserts"] >= 1
        # chains reuse pooled timeouts via the stash
        assert stats["timeout_pool"] >= 1


def test_repro_kernel_env_selects_backend(monkeypatch):
    monkeypatch.setenv("REPRO_KERNEL", "heap")
    assert Simulator().calendar_stats()["backend"] == "heap"
    monkeypatch.setenv("REPRO_KERNEL", "wheel")
    assert Simulator().calendar_stats()["backend"] == "wheel"
    monkeypatch.setenv("REPRO_KERNEL", "")
    assert Simulator().calendar_stats()["backend"] == "wheel"
    # explicit argument beats the environment
    monkeypatch.setenv("REPRO_KERNEL", "heap")
    assert Simulator(calendar="wheel").calendar_stats()["backend"] == "wheel"


def test_unknown_backend_rejected():
    with pytest.raises(SimulationError, match="calendar backend"):
        Simulator(calendar="btree")


# ----------------------------------------------------------------------
# C accelerator (skipped wholesale when the compile/handshake failed)
# ----------------------------------------------------------------------
accel = pytest.mark.skipif(
    _accel.load() is None, reason="C accelerator unavailable on this host"
)


@accel
@pytest.mark.parametrize("seed", [3, 7, 29])
def test_accel_matches_pure_python_fingerprint(seed):
    """The compiled timeout/register-drain paths must be bit-identical to
    the pure-Python wheel on the full event soup."""
    assert _fingerprint("wheel", None, seed) == _fingerprint(
        "wheel", None, seed, force_pure=True
    )


@accel
def test_accel_binds_compiled_paths():
    sim = Simulator(calendar="wheel")
    assert type(sim.timeout).__name__ == "builtin_function_or_method"
    assert sim._creg is not None
    # policy mode and the heap fallback stay pure
    assert Simulator(schedule_policy=FifoPolicy(), calendar="wheel")._creg is None
    assert Simulator(calendar="heap")._creg is None


def test_accel_env_disable(monkeypatch):
    """REPRO_KERNEL_C=0 forces the pure-Python kernel paths."""
    monkeypatch.setenv("REPRO_KERNEL_C", "0")
    monkeypatch.setattr(_accel, "_state", "unloaded")
    sim = Simulator(calendar="wheel")
    assert sim._creg is None
    assert type(sim.timeout).__name__ == "method"


@accel
def test_accel_spin_exception_and_count(sim):
    """An exception escaping a process mid-chain propagates out of run()
    with the interrupted event already counted (count-before-dispatch)."""
    before = []

    def chain():
        for i in range(5):
            yield sim.timeout(10)
            before.append(i)
        raise RuntimeError("boom")

    p = sim.process(chain())
    sim.run()  # the failure is captured by the process event, not raised
    assert before == [0, 1, 2, 3, 4]
    assert p.ok is False
    with pytest.raises(RuntimeError, match="boom"):
        p.result()
    # bootstrap + 5 timeouts + the final resume that raised = 7
    assert sim.events_executed == 7


@accel
def test_accel_stop_on_target_mid_chain(sim):
    """StopSimulation from run(until=process) unwinds through the C drain
    with the partial count handed back exactly."""

    def finite():
        for _ in range(3):
            yield sim.timeout(100)
        return "done"

    p = sim.process(finite())
    assert sim.run(until=p) == "done"
    assert sim.now == 300
    # bootstrap + timeouts at 100/200/300 + the completion event whose
    # callback raised StopSimulation = 5 (counted before dispatch)
    assert sim.events_executed == 5
