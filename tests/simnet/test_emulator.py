"""Delay emulator and jitter samplers."""

import random

import pytest

from repro.simnet import DelayEmulator, gaussian_jitter, uniform_jitter


def test_fixed_delay_sampling():
    em = DelayEmulator(5000)
    assert em.sample_ns() == 5000
    assert em.sample_ns() == 5000
    assert em.samples == 2


def test_uniform_jitter_bounds_and_determinism():
    a = DelayEmulator(1000, jitter=uniform_jitter(500), seed=42)
    b = DelayEmulator(1000, jitter=uniform_jitter(500), seed=42)
    draws_a = [a.sample_ns() for _ in range(200)]
    draws_b = [b.sample_ns() for _ in range(200)]
    assert draws_a == draws_b
    assert all(1000 <= d <= 1500 for d in draws_a)
    assert len(set(draws_a)) > 10  # actually varying


def test_gaussian_jitter_non_negative():
    sampler = gaussian_jitter(mean_ns=100, sigma_ns=500)
    rng = random.Random(7)
    draws = [sampler(rng) for _ in range(500)]
    assert all(d >= 0 for d in draws)
    assert any(d > 0 for d in draws)


def test_different_seeds_differ():
    a = DelayEmulator(0, jitter=uniform_jitter(1000), seed=1)
    b = DelayEmulator(0, jitter=uniform_jitter(1000), seed=2)
    assert [a.sample_ns() for _ in range(20)] != [b.sample_ns() for _ in range(20)]


def test_from_rtt_preserves_even_budget():
    em = DelayEmulator.from_rtt(48_000_000)
    assert em.rtt_ns == 48_000_000
    assert em.sample_ns(0) + em.sample_ns(1) == 48_000_000


def test_from_rtt_odd_budget_loses_no_nanosecond():
    """Regression: an odd RTT used to lose 1 ns to integer halving; the
    per-direction split must hand the spare nanosecond to one direction."""
    em = DelayEmulator.from_rtt(99)
    assert em.per_direction_base_ns == (49, 50)
    assert em.rtt_ns == 99
    assert em.sample_ns(0) + em.sample_ns(1) == 99
    assert em.base_ns(0) + em.base_ns(1) == 99


def test_base_ns_draws_no_jitter():
    """base_ns is a pure query: no RNG side effects, no sample count."""
    em = DelayEmulator(1000, jitter=uniform_jitter(500), seed=3)
    ref = DelayEmulator(1000, jitter=uniform_jitter(500), seed=3)
    for _ in range(10):
        assert em.base_ns() == 1000
        assert em.base_ns(1) == 1000
    assert em.samples == 0
    assert [em.sample_ns() for _ in range(50)] == [ref.sample_ns() for _ in range(50)]
