"""Process semantics: chaining, returns, exceptions, interrupts."""

import pytest

from helpers import run_procs
from repro.simnet import Event, Interrupt, Process, Signal
from repro.simnet.kernel import SimulationError


class Boom(Exception):
    pass


def test_process_returns_value(sim):
    def proc():
        yield sim.timeout(5)
        return 123

    assert run_procs(sim, proc()) == [123]


def test_process_requires_generator(sim):
    def not_a_generator():
        return 1

    with pytest.raises(SimulationError, match="generator"):
        Process(sim, not_a_generator())  # type: ignore[arg-type]


def test_processes_can_wait_on_each_other(sim):
    def child():
        yield sim.timeout(30)
        return "payload"

    def parent():
        value = yield sim.process(child())
        return (value, sim.now)

    assert run_procs(sim, parent()) == [("payload", 30)]


def test_exception_in_process_marks_failure(sim):
    def proc():
        yield sim.timeout(1)
        raise Boom()

    p = sim.process(proc())
    sim.run()
    assert p.triggered and p.ok is False
    with pytest.raises(Boom):
        p.result()


def test_failed_event_raises_inside_waiter(sim):
    ev = Event(sim)

    def proc():
        try:
            yield ev
        except Boom:
            return "caught"
        return "missed"

    ev.fail(Boom(), delay=10)
    assert run_procs(sim, proc()) == ["caught"]


def test_waiting_on_failed_child_propagates(sim):
    def child():
        yield sim.timeout(1)
        raise Boom()

    def parent():
        yield sim.process(child())

    p = sim.process(parent())
    sim.run()
    assert p.ok is False


def test_yield_non_event_fails_process(sim):
    def proc():
        yield 42  # type: ignore[misc]

    p = sim.process(proc())
    sim.run()
    assert p.ok is False
    with pytest.raises(SimulationError, match="must yield Events"):
        p.result()


def test_interrupt_wakes_process(sim):
    def sleeper():
        try:
            yield sim.timeout(1000)
        except Interrupt as intr:
            return ("interrupted", intr.cause, sim.now)
        return "slept through"

    p = sim.process(sleeper())

    def interrupter():
        yield sim.timeout(10)
        p.interrupt("reason")

    run_procs(sim, interrupter())
    assert p.result() == ("interrupted", "reason", 10)


def test_interrupt_escaping_generator_is_clean_termination(sim):
    sig = Signal(sim)

    def server():
        while True:
            yield sig.wait()  # Interrupt escapes here

    p = sim.process(server())

    def stopper():
        yield sim.timeout(5)
        p.interrupt()

    run_procs(sim, stopper())
    assert p.triggered and p.ok
    assert p.result() is None


def test_interrupt_terminated_process_rejected(sim):
    def quick():
        yield sim.timeout(1)

    p = sim.process(quick())
    sim.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_is_alive(sim):
    def proc():
        yield sim.timeout(10)

    p = sim.process(proc())
    assert p.is_alive
    sim.run()
    assert not p.is_alive
