"""Determinism and boundary tests for the decoupled cells kernel.

The contract under test (see docs/SIMULATION.md, "Temporal decoupling and
lookahead"):

* ``kernel="cells"`` (conservative windowed bursts) is **bit-identical**
  to ``kernel="cells-lockstep"`` (strict global time order under the same
  cell-key tie-break) — across seeds, topologies, transports, reliability
  modes, and fault profiles.  Temporal decoupling changes wall-clock
  behaviour only, never simulation results.
* The C drain and the pure-Python drain produce identical runs.
* Cross-cell posts into a cell's past raise the causality guard.
* Incompatible configurations (no switched topology, schedule policies,
  causal capture) fall back to the monolithic kernel instead of failing.
"""

import pytest

from repro.apps.incast import IncastConfig, run_incast
from repro.config import ScenarioConfig
from repro.exs import ExsSocketOptions, MsgFlags
from repro.exs.eventqueue import ExsEventType
from repro.fabric import Fabric
from repro.simnet import FaultProfile, Simulator, Topology
from repro.simnet.cells import CONTROL, CellMap, CellSimulator
from repro.simnet.kernel import SimulationError
from repro.verbs import ReliabilityConfig


# ---------------------------------------------------------------------------
# fingerprinting helpers
# ---------------------------------------------------------------------------
def _incast_fingerprint(kernel, *, seed, policy="backpressure",
                        transport=None, rel_mode=None, faults=None):
    """Run a small audited incast and return its full result fingerprint."""
    cfg = IncastConfig(
        senders=4, connections_per_sender=2,
        message_bytes=4096, bytes_per_sender=2 * 4096,
        policy=policy,
        options=ExsSocketOptions(real_data=False, transport=transport),
    )
    scenario = ScenarioConfig(seed=seed, srq_depth=256, cq_shards=2,
                              kernel=kernel, faults=faults)
    if rel_mode is not None or faults is not None:
        profile = scenario.resolve_profile()
        rel = ReliabilityConfig.for_path(
            2 * (profile.propagation_delay_ns + profile.emulator_delay_ns))
        if rel_mode is not None:
            from dataclasses import replace
            rel = replace(rel, mode=rel_mode)
        scenario = scenario.with_(reliability=rel)
    result = run_incast(cfg, scenario, audit=True)
    assert result.audit_violations == 0
    fp = result.to_dict()
    fp["finish_ns"] = list(result.finish_ns)
    return fp


MATRIX = [
    # transport, reliability mode, switch policy, seed, faults
    ("wwi", None, "backpressure", 1, None),
    ("wwi", "selective_repeat", "drop", 2, None),
    ("eager_rendezvous", "gobackn", "drop", 1, None),
    ("eager_rendezvous", "selective_repeat", "backpressure", 2, None),
    ("wwi", "gobackn", "backpressure", 3, FaultProfile(drop_prob=0.02)),
    ("eager_rendezvous", "gobackn", "backpressure", 1,
     FaultProfile(drop_prob=0.01, corrupt_prob=0.01)),
]


@pytest.mark.parametrize(
    "transport,rel_mode,policy,seed,faults", MATRIX,
    ids=[f"{t}-{m or 'default'}-{p}-s{s}{'-faults' if f else ''}"
         for t, m, p, s, f in MATRIX])
def test_decoupled_matches_lockstep_bit_identical(
        transport, rel_mode, policy, seed, faults):
    """Windowed bursts never change results, only wall-clock behaviour."""
    kwargs = dict(seed=seed, policy=policy, transport=transport,
                  rel_mode=rel_mode, faults=faults)
    decoupled = _incast_fingerprint("cells", **kwargs)
    lockstep = _incast_fingerprint("cells-lockstep", **kwargs)
    assert decoupled == lockstep


def test_cells_tracks_legacy_aggregates():
    """The cell-key tie-break may shift same-instant interleavings, but
    aggregate results stay with the monolithic kernel's (anchor row)."""
    cells = _incast_fingerprint("cells", seed=1)
    legacy = _incast_fingerprint(None, seed=1)
    assert cells["total_bytes"] == legacy["total_bytes"]
    assert cells["connections"] == legacy["connections"]
    # tie-break order shifts a handful of same-instant wake-ups; on a run
    # this short that moves completion by a few percent, never more
    assert cells["end_ns"] == pytest.approx(legacy["end_ns"], rel=0.10)


def test_c_and_pure_python_drains_are_bit_identical(monkeypatch):
    """The accelerated per-cell drain replays the pure engine exactly."""
    from repro.simnet import cells as cells_mod

    accelerated = _incast_fingerprint("cells", seed=2)
    monkeypatch.setattr(cells_mod, "_CELLS_ACCEL", None)
    pure = _incast_fingerprint("cells", seed=2)
    assert accelerated == pure


# ---------------------------------------------------------------------------
# leaf-spine topology (cross-switch lookahead)
# ---------------------------------------------------------------------------
def _leaf_spine_run(kernel, seed, transport, rel_mode):
    topo = Topology.leaf_spine([["h0", "h1"], ["h2", "h3"]], spines=2)
    scenario = ScenarioConfig(seed=seed, topology=topo,
                              srq_depth=128, cq_shards=2, kernel=kernel)
    profile = scenario.resolve_profile()
    if rel_mode is not None:
        from dataclasses import replace
        rel = ReliabilityConfig.for_path(
            2 * (profile.propagation_delay_ns + profile.emulator_delay_ns))
        scenario = scenario.with_(reliability=replace(rel, mode=rel_mode))
    fabric = Fabric.from_scenario(scenario)
    if kernel in ("cells", "cells-lockstep"):
        assert fabric.kernel == kernel

    options = ExsSocketOptions(real_data=False, transport=transport)
    finish = {}
    nbytes = 4096

    def sender(handle):
        yield handle.wait_side("a")
        stack = handle.fabric.stack(handle.a)
        buf = stack.alloc(nbytes, label="ls:snd")
        mr = yield from stack.mregister(buf)
        for _ in range(3):
            handle.a_socket.send(buf, mr, nbytes, handle.a_eq)
            ev = yield handle.a_eq.dequeue()
            ev.expect(ExsEventType.SEND)

    def receiver(handle, idx):
        yield handle.wait_side("b")
        stack = handle.fabric.stack(handle.b)
        buf = stack.alloc(nbytes, label="ls:rcv")
        mr = yield from stack.mregister(buf)
        remaining = 3 * nbytes
        while remaining > 0:
            handle.b_socket.recv(buf, mr, nbytes, handle.b_eq,
                                 flags=MsgFlags.MSG_WAITALL)
            ev = yield handle.b_eq.dequeue()
            ev.expect(ExsEventType.RECV)
            remaining -= ev.nbytes
        finish[idx] = stack.sim.now

    pairs = [("h0", "h2"), ("h1", "h3"), ("h3", "h0"), ("h2", "h1")]
    for i, (a, b) in enumerate(pairs):
        handle = fabric.connect(a, b, options=options)
        fabric.sim.process(sender(handle), name=f"ls-snd-{i}")
        fabric.sim.process(receiver(handle, i), name=f"ls-rcv-{i}")
    fabric.run()
    assert sorted(finish) == list(range(len(pairs)))
    return {"finish": finish, "end": fabric.sim.now}


@pytest.mark.parametrize("transport,rel_mode,seed", [
    ("wwi", None, 1),
    ("eager_rendezvous", "selective_repeat", 2),
])
def test_leaf_spine_decoupled_matches_lockstep(transport, rel_mode, seed):
    decoupled = _leaf_spine_run("cells", seed, transport, rel_mode)
    lockstep = _leaf_spine_run("cells-lockstep", seed, transport, rel_mode)
    assert decoupled == lockstep


# ---------------------------------------------------------------------------
# kernel-level boundaries (no protocol stack)
# ---------------------------------------------------------------------------
def _ping_pong_trace(decouple: bool, lookahead_ns: int):
    """Two cells relaying a counter via cross-cell posts; returns the
    observed (time, cell, value) execution log."""
    cm = CellMap(("a", "b", CONTROL), (lookahead_ns, lookahead_ns, 0))
    sim = CellSimulator(cm, decouple=decouple)
    log = []

    def relay(arg):
        target, hops = arg
        log.append((sim.now, cm.names[target], hops))
        if hops < 20:
            nxt = cm.index["a"] if target == cm.index["b"] else cm.index["b"]
            sim.call_in_cell(nxt, max(1, lookahead_ns), relay, (nxt, hops + 1))

    with sim.cell("a"):
        sim.call_in(0, relay, (cm.index["a"], 0))
    sim.run()
    return log, sim.now


def test_zero_lookahead_degenerates_to_lockstep_and_stays_correct():
    """lookahead 0 forces single-instant windows; results are unchanged."""
    dec, dec_end = _ping_pong_trace(True, 0)
    lock, lock_end = _ping_pong_trace(False, 0)
    assert dec == lock
    assert dec_end == lock_end
    assert len(dec) == 21


def test_positive_lookahead_same_trace_as_lockstep():
    dec, dec_end = _ping_pong_trace(True, 100)
    lock, lock_end = _ping_pong_trace(False, 100)
    assert dec == lock
    assert dec_end == lock_end


def test_causality_guard_rejects_posts_into_a_cells_past():
    """An overstated lookahead table lets a burst outrun a neighbour's
    post; the kernel must refuse to deliver into the past."""
    cm = CellMap(("a", "b", CONTROL), (1000, 1000, 0))
    sim = CellSimulator(cm, decouple=True)

    def a_work(_):
        # local chain keeps cell a's clock advancing inside its window
        if sim.now < 400:
            sim.call_in(100, a_work, None)

    def b_post(_):
        # by now cell a has burst past t=10: this arrival is in its past
        sim.call_in_cell(cm.index["a"], 10, lambda _: None, None)

    with sim.cell("a"):
        sim.call_in(0, a_work, None)
    with sim.cell("b"):
        sim.call_in(50, b_post, None)
    with pytest.raises(SimulationError, match="causality violation"):
        sim.run()


# ---------------------------------------------------------------------------
# fallback matrix + config plumbing
# ---------------------------------------------------------------------------
def test_fabric_selects_cells_kernel_on_switched_topology():
    topo = Topology.star(["a", "b", "c"])
    fabric = Fabric.from_scenario(
        ScenarioConfig(topology=topo, kernel="cells"))
    assert fabric.kernel == "cells"
    assert isinstance(fabric.sim, CellSimulator)
    stats = fabric.sim.calendar_stats()
    assert stats["backend"] == "cells"
    assert stats["mode"] == "decoupled"
    assert set(stats["cells"]) == {"a", "b", "c", "switch0", CONTROL}


def test_fabric_decoupled_alias_and_lockstep_mode():
    topo = Topology.star(["a", "b", "c"])
    alias = Fabric.from_scenario(ScenarioConfig(topology=topo, kernel="decoupled"))
    assert alias.kernel == "cells"
    lock = Fabric.from_scenario(
        ScenarioConfig(topology=topo, kernel="cells-lockstep"))
    assert lock.sim.calendar_stats()["mode"] == "lockstep"


def test_fabric_falls_back_to_legacy_without_a_switch():
    fabric = Fabric.from_scenario(ScenarioConfig(kernel="cells"))
    assert fabric.kernel == "legacy"
    assert not isinstance(fabric.sim, CellSimulator)


def test_fabric_falls_back_to_legacy_under_causal_capture():
    topo = Topology.star(["a", "b", "c"])
    fabric = Fabric.from_scenario(
        ScenarioConfig(topology=topo, kernel="cells", causal_capture=True))
    assert fabric.kernel == "legacy"


def test_env_kernel_selection_via_fabric(monkeypatch):
    monkeypatch.setenv("REPRO_KERNEL", "cells")
    topo = Topology.star(["a", "b", "c"])
    fabric = Fabric.from_scenario(ScenarioConfig(topology=topo))
    assert fabric.kernel == "cells"
    # an explicit scenario kernel wins over the environment
    fabric = Fabric.from_scenario(ScenarioConfig(topology=topo, kernel="wheel"))
    assert fabric.kernel == "legacy"


def test_env_cells_on_plain_simulator_keeps_the_wheel(monkeypatch):
    monkeypatch.setenv("REPRO_KERNEL", "cells")
    sim = Simulator()
    assert sim.calendar_stats()["backend"] != "cells"


def test_scenario_config_kernel_round_trip():
    cfg = ScenarioConfig(kernel="decoupled")
    assert ScenarioConfig.from_dict(cfg.to_dict()).kernel == "decoupled"
    assert ScenarioConfig.from_dict(ScenarioConfig().to_dict()).kernel is None
    with pytest.raises(ValueError, match="unknown kernel"):
        ScenarioConfig(kernel="warp")


def test_calendar_stats_per_cell_counters_accumulate():
    """Per-cell counters sum to the run totals and expose every gauge the
    observability layer publishes as ``kernel.cell.<name>.*``."""
    out = _leaf_spine_run("cells", 1, None, None)
    assert out["end"] > 0
    topo = Topology.leaf_spine([["h0", "h1"], ["h2", "h3"]], spines=2)
    fabric = Fabric.from_scenario(
        ScenarioConfig(seed=1, topology=topo, kernel="cells"))
    fabric.run(until=1_000_000)
    stats = fabric.sim.calendar_stats()
    per = stats["cells"]
    assert sum(c["events"] for c in per.values()) == stats["events_executed"]
    assert sum(c["instants"] for c in per.values()) == stats["batches"]
    for c in per.values():
        assert set(c) >= {"horizon_ns", "next_ns", "queued", "instants",
                          "events", "safe_window_ns", "inbox_merges",
                          "lookahead_ns"}
