"""Impairment model: seeded fault streams, outage windows, link integration."""

import pytest

from repro.simnet import (
    Corrupted,
    Fate,
    FaultProfile,
    ImpairmentModel,
    Link,
)


def test_profile_validates_probabilities():
    with pytest.raises(ValueError):
        FaultProfile(drop_prob=1.5)
    with pytest.raises(ValueError):
        FaultProfile(corrupt_prob=-0.1)
    assert not FaultProfile().impaired
    assert FaultProfile(duplicate_prob=0.1).impaired


def test_zero_probabilities_draw_nothing():
    """All-zero profiles must consume no RNG state, so adding an idle
    impairment model cannot perturb a simulation."""
    m = ImpairmentModel(FaultProfile(), seed=5)
    state = m._dirs[0].rng.getstate()
    for t in range(100):
        assert m.classify(0, t) is Fate.DELIVER
        assert not m.ack_lost(0, t)
    assert m._dirs[0].rng.getstate() == state


def test_fault_sequence_is_deterministic_per_seed():
    def fates(seed):
        m = ImpairmentModel(FaultProfile(drop_prob=0.3, duplicate_prob=0.2,
                                         corrupt_prob=0.1), seed=seed)
        return [m.classify(0, t) for t in range(200)]

    assert fates(1) == fates(1)
    assert fates(1) != fates(2)


def test_directions_have_independent_streams():
    m = ImpairmentModel(FaultProfile(drop_prob=0.5), seed=3)
    a = [m.classify(0, t) for t in range(100)]
    # draining direction 1 must not change what direction 0 would have drawn
    m2 = ImpairmentModel(FaultProfile(drop_prob=0.5), seed=3)
    _ = [m2.classify(1, t) for t in range(100)]
    b = [m2.classify(0, t) for t in range(100)]
    assert a == b


def test_asymmetric_profiles():
    m = ImpairmentModel(FaultProfile(drop_prob=1.0), FaultProfile(), seed=1)
    assert m.classify(0, 0) is Fate.DROP
    assert m.classify(1, 0) is Fate.DELIVER
    assert m.stats(0).dropped == 1
    assert m.stats(1).dropped == 0


def test_down_windows_kill_everything_without_rng_draws():
    m = ImpairmentModel(FaultProfile(drop_prob=0.5), seed=2,
                        down_windows=((100, 200),))
    state = m._dirs[0].rng.getstate()
    assert m.classify(0, 150) is Fate.DOWN
    assert m.ack_lost(0, 150)
    assert m._dirs[0].rng.getstate() == state  # outage decisions draw nothing
    assert m.link_down(100) and not m.link_down(200)  # half-open interval
    assert m.down_dropped_total == 1 and m.acks_dropped_total == 1


def test_bad_down_window_rejected():
    with pytest.raises(ValueError):
        ImpairmentModel(down_windows=((200, 100),))


def test_link_delivers_corrupted_wrapper_and_drops(sim):
    link = Link(sim, bandwidth_bps=8e9, propagation_delay_ns=100,
                per_message_overhead_ns=0,
                impairment=ImpairmentModel(FaultProfile(corrupt_prob=1.0)))
    got = []
    tx = link.attach(0, lambda p: None)
    link.attach(1, got.append)
    tx.transmit("payload", 10)
    sim.run()
    assert len(got) == 1
    assert isinstance(got[0], Corrupted)
    assert got[0].payload == "payload"


def test_link_duplicates_arrive_in_order_same_instant(sim):
    link = Link(sim, bandwidth_bps=8e9, propagation_delay_ns=100,
                per_message_overhead_ns=0,
                impairment=ImpairmentModel(FaultProfile(duplicate_prob=1.0)))
    got = []
    tx = link.attach(0, lambda p: None)
    link.attach(1, lambda p: got.append((sim.now, p)))
    tx.transmit("m", 10)
    sim.run()
    assert got == [(110, "m"), (110, "m")]


def test_fault_exempt_payloads_bypass_impairment(sim):
    class ExemptMsg:
        fault_exempt = True

    link = Link(sim, bandwidth_bps=8e9, propagation_delay_ns=100,
                per_message_overhead_ns=0,
                impairment=ImpairmentModel(FaultProfile(drop_prob=1.0)))
    got = []
    tx = link.attach(0, lambda p: None)
    link.attach(1, got.append)
    msg = ExemptMsg()
    tx.transmit(msg, 10)
    tx.transmit("droppable", 10)
    sim.run()
    assert got == [msg]


def test_set_profile_swaps_mid_run():
    m = ImpairmentModel(FaultProfile(drop_prob=1.0), seed=4)
    assert m.classify(0, 0) is Fate.DROP
    m.set_profile(0, FaultProfile())
    assert m.classify(0, 1) is Fate.DELIVER
