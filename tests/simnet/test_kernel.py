"""Kernel basics: clock, calendar ordering, run modes."""

import pytest

from repro.simnet import Event, Simulator, Timeout
from repro.simnet.kernel import SimulationError


def test_clock_starts_at_zero(sim):
    assert sim.now == 0


def test_timeout_advances_clock(sim):
    fired = []
    t = Timeout(sim, 100, value="x")
    t.add_callback(lambda e: fired.append((sim.now, e.result())))
    sim.run()
    assert fired == [(100, "x")]


def test_events_fire_in_time_order(sim):
    order = []
    for delay in (50, 10, 30, 10, 0):
        Timeout(sim, delay).add_callback(lambda e, d=delay: order.append(d))
    sim.run()
    assert order == [0, 10, 10, 30, 50]


def test_same_time_events_fire_in_schedule_order(sim):
    order = []
    for i in range(10):
        Timeout(sim, 42).add_callback(lambda e, i=i: order.append(i))
    sim.run()
    assert order == list(range(10))


def test_run_until_time_stops_clock_exactly(sim):
    Timeout(sim, 100)
    Timeout(sim, 300)
    sim.run(until=200)
    assert sim.now == 200
    # the 300ns event is still pending
    assert sim.peek() == 300


def test_run_until_event_returns_value(sim):
    def proc():
        yield sim.timeout(25)
        return "done"

    p = sim.process(proc())
    assert sim.run(until=p) == "done"
    assert sim.now == 25


def test_run_until_untriggered_event_raises(sim):
    ev = Event(sim)  # never triggered
    Timeout(sim, 10)
    with pytest.raises(SimulationError, match="deadlock"):
        sim.run(until=ev)


def test_negative_delay_rejected(sim):
    with pytest.raises(SimulationError):
        sim.schedule(Event(sim), delay=-1)


def test_non_integer_delay_rejected(sim):
    with pytest.raises(SimulationError):
        sim.schedule(Event(sim), delay=1.5)


def test_max_events_guard(sim):
    def ticker():
        while True:
            yield sim.timeout(1)

    sim.process(ticker())
    with pytest.raises(SimulationError, match="max_events"):
        sim.run(max_events=100)


def test_events_executed_counter(sim):
    for _ in range(5):
        Timeout(sim, 1)
    sim.run()
    assert sim.events_executed == 5


def test_peek_empty_calendar(sim):
    assert sim.peek() is None


def test_trace_hook_invoked():
    records = []
    sim = Simulator(trace=lambda t, cat, msg: records.append((t, cat, msg)))
    sim.trace("unit", "hello")
    assert records == [(0, "unit", "hello")]
