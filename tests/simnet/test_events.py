"""Event primitives: success/failure, conditions, signals."""

import pytest

from repro.simnet import AllOf, AnyOf, Event, Signal, Timeout
from repro.simnet.kernel import SimulationError


class Boom(Exception):
    pass


def test_event_lifecycle(sim):
    ev = Event(sim)
    assert not ev.triggered and ev.ok is None
    ev.succeed(42)
    assert ev.triggered and ev.ok
    sim.run()
    assert ev.processed
    assert ev.result() == 42


def test_event_failure_propagates(sim):
    ev = Event(sim)
    ev.fail(Boom("bad"))
    sim.run()
    with pytest.raises(Boom):
        ev.result()


def test_double_trigger_rejected(sim):
    ev = Event(sim)
    ev.succeed()
    with pytest.raises(SimulationError):
        ev.succeed()
    with pytest.raises(SimulationError):
        ev.fail(Boom())


def test_fail_requires_exception(sim):
    with pytest.raises(SimulationError):
        Event(sim).fail("not an exception")  # type: ignore[arg-type]


def test_result_before_trigger_raises(sim):
    with pytest.raises(SimulationError):
        Event(sim).result()


def test_callback_after_processed_still_runs(sim):
    ev = Event(sim)
    ev.succeed("v")
    sim.run()
    got = []
    ev.add_callback(lambda e: got.append(e.result()))
    sim.run()
    assert got == ["v"]


def test_delayed_succeed(sim):
    ev = Event(sim)
    times = []
    ev.add_callback(lambda e: times.append(sim.now))
    ev.succeed(delay=75)
    sim.run()
    assert times == [75]


# -- AllOf -------------------------------------------------------------------
def test_allof_waits_for_all(sim):
    evs = [Timeout(sim, d, value=d) for d in (10, 30, 20)]
    cond = AllOf(sim, evs)
    done_at = []
    cond.add_callback(lambda e: done_at.append(sim.now))
    sim.run()
    assert done_at == [30]
    assert cond.result() == [10, 30, 20]


def test_allof_empty_succeeds_immediately(sim):
    cond = AllOf(sim, [])
    sim.run()
    assert cond.result() == []


def test_allof_fails_fast(sim):
    bad = Event(sim)
    slow = Timeout(sim, 1000)
    cond = AllOf(sim, [bad, slow])
    bad.fail(Boom(), delay=5)
    sim.run(until=20)
    assert cond.triggered and cond.ok is False


# -- AnyOf -------------------------------------------------------------------
def test_anyof_first_wins(sim):
    a = Timeout(sim, 50, value="a")
    b = Timeout(sim, 10, value="b")
    cond = AnyOf(sim, [a, b])
    sim.run()
    assert cond.result() == (1, "b")


def test_anyof_already_triggered_child(sim):
    a = Event(sim)
    a.succeed("now")
    cond = AnyOf(sim, [a, Timeout(sim, 99)])
    sim.run(until=1)
    assert cond.triggered
    assert cond.result() == (0, "now")


def test_anyof_zero_events_rejected(sim):
    with pytest.raises(SimulationError):
        AnyOf(sim, [])


# -- Signal ------------------------------------------------------------------
def test_signal_wakes_all_waiters(sim):
    sig = Signal(sim)
    results = []

    def waiter(tag):
        yield sig.wait()
        results.append((tag, sim.now))

    sim.process(waiter("a"))
    sim.process(waiter("b"))

    def firer():
        yield sim.timeout(40)
        sig.fire()

    sim.process(firer())
    sim.run()
    assert sorted(results) == [("a", 40), ("b", 40)]


def test_signal_latches_when_no_waiters(sim):
    sig = Signal(sim)
    sig.fire()

    def waiter():
        yield sig.wait()
        return sim.now

    (t,) = [sim.run(until=sim.process(waiter()))]
    assert t == 0  # latched fire consumed immediately


def test_signal_latch_consumed_once(sim):
    sig = Signal(sim)
    sig.fire()
    first = sig.wait()
    second = sig.wait()
    sim.run()
    assert first.triggered
    assert not second.triggered


def test_signal_non_latching(sim):
    sig = Signal(sim, latching=False)
    sig.fire()  # lost: nobody waiting
    ev = sig.wait()
    sim.run()
    assert not ev.triggered
