"""Link model: serialization, propagation, ordering, emulation."""

import pytest

from repro.simnet import DelayEmulator, Link, uniform_jitter
from repro.simnet.kernel import SimulationError


def make_link(sim, bw=8e9, prop=100, overhead=10, emulator=None):
    return Link(
        sim,
        bandwidth_bps=bw,
        propagation_delay_ns=prop,
        per_message_overhead_ns=overhead,
        emulator=emulator,
    )


def one_way(link, handler):
    """Transmit direction from endpoint 0; *handler* receives at endpoint 1."""
    tx = link.attach(0, lambda p: None)
    link.attach(1, handler)
    return tx


def test_transmission_time_math(sim):
    link = make_link(sim, bw=8e9, overhead=10)  # 8 Gb/s = 1 byte/ns
    assert link.transmission_ns(1000) == 10 + 1000
    assert link.transmission_ns(0) == 10


def test_delivery_time_and_payload(sim):
    link = make_link(sim)
    got = []
    tx = one_way(link, lambda p: got.append((sim.now, p)))
    arrival = tx.transmit("hello", 1000)
    assert arrival == 10 + 1000 + 100
    sim.run()
    assert got == [(1110, "hello")]


def test_serialization_queues_back_to_back(sim):
    link = make_link(sim)
    got = []
    tx = one_way(link, lambda p: got.append(sim.now))
    tx.transmit("a", 1000)
    tx.transmit("b", 1000)
    sim.run()
    # second message waits for the first to finish serializing
    assert got == [1110, 2120]


def test_directions_are_independent(sim):
    link = make_link(sim)
    got_a, got_b = [], []
    tx0 = link.attach(0, lambda p: got_a.append(sim.now))
    tx1 = link.attach(1, lambda p: got_b.append(sim.now))
    tx0.transmit("to-b", 1000)
    tx1.transmit("to-a", 1000)
    sim.run()
    # full duplex: both arrive at the same time, no contention
    assert got_a == [1110] and got_b == [1110]


def test_extra_tx_ns_occupies_wire(sim):
    link = make_link(sim)
    got = []
    tx = one_way(link, lambda p: got.append(sim.now))
    tx.transmit("a", 1000, extra_tx_ns=500)
    tx.transmit("b", 1000)
    sim.run()
    assert got == [1610, 2620]


def test_emulator_adds_fixed_delay(sim):
    link = make_link(sim, emulator=DelayEmulator(1_000_000))
    got = []
    tx = one_way(link, lambda p: got.append(sim.now))
    tx.transmit("x", 1000)
    sim.run()
    assert got == [1110 + 1_000_000]


def test_jitter_never_reorders(sim):
    em = DelayEmulator(0, jitter=uniform_jitter(100_000), seed=3)
    link = make_link(sim, emulator=em)
    got = []
    tx = one_way(link, lambda p: got.append((p, sim.now)))
    for i in range(50):
        tx.transmit(i, 100)
    sim.run()
    assert [p for p, _t in got] == list(range(50))
    times = [t for _p, t in got]
    assert times == sorted(times)


def test_transmit_without_handler_rejected(sim):
    link = make_link(sim)
    with pytest.raises(SimulationError, match="handler"):
        link.directions[0].transmit("x", 10)


def test_negative_wire_bytes_rejected(sim):
    link = make_link(sim)
    tx = one_way(link, lambda p: None)
    with pytest.raises(SimulationError):
        tx.transmit("x", -1)


def test_bad_endpoint_rejected(sim):
    link = make_link(sim)
    with pytest.raises(SimulationError):
        link.attach(2, lambda p: None)


def test_stats_accumulate(sim):
    link = make_link(sim)
    tx = one_way(link, lambda p: None)
    tx.transmit("a", 500)
    tx.transmit("b", 700)
    assert tx.stats.messages == 2
    assert tx.stats.wire_bytes == 1200


def test_one_way_latency_estimate_includes_emulator(sim):
    link = make_link(sim, emulator=DelayEmulator(5000))
    assert link.one_way_latency_ns(0) == 10 + 100 + 5000


def test_emulator_from_rtt():
    em = DelayEmulator.from_rtt(48_000_000)
    assert em.base_delay_ns == 24_000_000


def test_emulator_rejects_negative_delay():
    with pytest.raises(ValueError):
        DelayEmulator(-1)


def test_propagation_query_does_not_perturb_jitter(sim):
    """Regression: ``propagation_ns()`` used to draw a jitter sample, so a
    mid-run latency *query* changed later arrival times.  It must now be a
    pure function of the link configuration."""
    from repro.simnet import Simulator

    def run(query_between):
        s = Simulator()
        em = DelayEmulator(1000, jitter=uniform_jitter(50_000), seed=9)
        link = Link(s, bandwidth_bps=8e9, propagation_delay_ns=100,
                    per_message_overhead_ns=10, emulator=em)
        got = []
        tx = link.attach(0, lambda p: None)
        link.attach(1, lambda p: got.append(s.now))
        tx.transmit("a", 100)
        if query_between:
            for _ in range(5):
                link.propagation_ns()
        tx.transmit("b", 100)
        s.run()
        return got

    assert run(query_between=True) == run(query_between=False)


def test_propagation_ns_is_jitter_free_but_sample_draws(sim):
    em = DelayEmulator(1000, jitter=uniform_jitter(50_000), seed=9)
    link = make_link(sim, emulator=em)
    assert link.propagation_ns() == link.propagation_ns() == 100 + 1000
    assert em.samples == 0
    draws = {link.sample_propagation_ns(0) for _ in range(20)}
    assert em.samples == 20
    assert len(draws) > 1  # jitter actually applied
    assert all(d >= 100 + 1000 for d in draws)
