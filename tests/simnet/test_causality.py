"""Causality capture: schedule-identical replay plus a correct causal DAG.

The contract of :mod:`repro.simnet.causality` is twofold:

* **Equivalence** — a captured run executes the exact same schedule as an
  uncaptured one, on every calendar backend (wheel FIFO, wheel + policy,
  heap).  The fingerprint workload from the timing-wheel suite is reused:
  any ordering divergence derails a shared PRNG and amplifies.
* **Causal structure** — every placement records its parent (the entry
  executing when it was scheduled), category, and schedule/fire times,
  and ``child.sched_ns == parent.fire_ns`` so chains tile exactly.
"""

import pytest

from repro.simnet import (
    CausalRecorder,
    Event,
    FifoPolicy,
    RandomTiebreakPolicy,
    SimulationError,
    Simulator,
    enable_capture,
)


def _lcg(seed):
    state = (seed * 2654435761) & 0x7FFFFFFF or 1
    while True:
        state = (state * 1103515245 + 12345) & 0x7FFFFFFF
        yield state


DELAYS = (0, 1, 3, 7, 100, 1000, 4095, 4096, 4097, 70_000, 16_773_120, 50_000_000)


def _build_workload(sim, seed, log):
    """Deterministic event soup: timeout chains, same-instant bursts,
    call_in deliveries, manually triggered events (as in test_timing_wheel)."""
    rnd = _lcg(seed)

    def chain_worker(wid):
        for i in range(15):
            d = DELAYS[next(rnd) % len(DELAYS)]
            v = yield sim.timeout(d, value=(wid, i))
            log.append(("w", wid, i, v, sim.now))

    def burst_worker(wid):
        for i in range(6):
            base = next(rnd) % 5000
            evs = [sim.timeout(base) for _ in range(next(rnd) % 4 + 2)]
            for j, t in enumerate(evs):
                t.add_callback(
                    lambda e, wid=wid, i=i, j=j: log.append(("b", wid, i, j, sim.now)))
            yield evs[0]
            log.append(("bw", wid, i, sim.now))
            yield sim.timeout(next(rnd) % 64)

    for wid in range(4):
        sim.process(chain_worker(wid))
    for wid in range(2):
        sim.process(burst_worker(wid))
    for i in range(40):
        d = (next(rnd) % 40) * 128
        sim.call_in(d, lambda arg: log.append(("cb",) + arg), (i, d))
    for i in range(20):
        ev = Event(sim)
        ev.add_callback(lambda e, i=i: log.append(("ev", i, e._value, sim.now)))
        ev.succeed(value=i, delay=next(rnd) % 3)


def _policy(kind, seed):
    if kind == "fifo":
        return FifoPolicy()
    if kind == "random":
        return RandomTiebreakPolicy(seed=seed * 7 + 5)
    return None


def _fingerprint(backend, policy_kind, seed, capture):
    sim = Simulator(schedule_policy=_policy(policy_kind, seed), calendar=backend)
    rec = enable_capture(sim, CausalRecorder()) if capture else None
    log = []
    _build_workload(sim, seed, log)
    sim.run()
    return (tuple(log), sim.now, sim.events_executed), sim, rec


# ----------------------------------------------------------------------
# equivalence: capture replays the identical schedule, every backend
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", [1, 2, 17])
@pytest.mark.parametrize("backend,policy_kind", [
    ("wheel", None), ("wheel", "fifo"), ("wheel", "random"), ("heap", None),
])
def test_capture_is_schedule_identical(backend, policy_kind, seed):
    plain, _, _ = _fingerprint(backend, policy_kind, seed, capture=False)
    captured, _, rec = _fingerprint(backend, policy_kind, seed, capture=True)
    assert plain == captured
    assert len(rec.nodes) > 0


def test_captured_run_matches_heap_reference():
    """Cross-backend AND cross-capture: all four combinations agree."""
    results = {
        (b, c): _fingerprint(b, None, 23, capture=c)[0]
        for b in ("wheel", "heap") for c in (False, True)
    }
    assert len(set(results.values())) == 1


# ----------------------------------------------------------------------
# DAG structure
# ----------------------------------------------------------------------
def test_parent_links_and_tiling():
    _, sim, rec = _fingerprint("wheel", None, 5, capture=True)
    fired = [n for n in rec.nodes.values() if n.fire_ns >= 0]
    assert fired, "no nodes fired"
    rooted = 0
    for node in fired:
        assert node.fire_ns >= node.sched_ns
        if node.parent >= 0:
            parent = rec.node(node.parent)
            assert parent is not None
            # the child was scheduled during its parent's dispatch
            assert node.sched_ns == parent.fire_ns
        else:
            rooted += 1
    assert rooted > 0, "expected top-level placements with parent=-1"


def test_categories_recorded():
    sim = Simulator()
    rec = enable_capture(sim, CausalRecorder())
    log = []

    def proc():
        yield sim.timeout(10)
        sim.call_in(5, log.append, "x")
        ev = Event(sim)
        ev.succeed(delay=3)
        yield ev

    sim.process(proc())
    sim.run()
    cats = {n.category for n in rec.nodes.values()}
    assert {"process", "timeout", "call", "event"} <= cats


def test_named_callbacks_get_semantic_categories():
    sim = Simulator()
    rec = enable_capture(sim, CausalRecorder())

    class Engine:
        def _on_wire(self, arg):
            pass

        def _on_timer(self, arg):
            pass

    eng = Engine()
    sim.call_in(5, eng._on_wire, None)
    sim.call_in(7, eng._on_timer, None)
    sim.run()
    cats = sorted(n.category for n in rec.nodes.values())
    assert cats == ["link", "rto_timer"]


def test_annotate_last_attaches_meta():
    sim = Simulator()
    rec = enable_capture(sim, CausalRecorder())
    sim.call_in(10, lambda a: None, None)
    rec.annotate_last(1, queue_ns=2, tx_ns=5, prop_ns=3)
    sim.run()
    (node,) = rec.nodes.values()
    assert node.meta == {"queue_ns": 2, "tx_ns": 5, "prop_ns": 3}


# ----------------------------------------------------------------------
# flight ring bounds + failure dumps
# ----------------------------------------------------------------------
def test_ring_mode_bounds_memory():
    sim = Simulator()
    rec = enable_capture(sim, CausalRecorder(capacity=8))
    for i in range(50):
        sim.call_in(i, lambda a: None, None)
    sim.run()
    # at most the ring (8) plus any never-fired pending nodes (none here)
    assert len(rec.nodes) <= 8
    assert [n.cid for n in rec.fired_nodes()] == list(range(42, 50))


def test_failure_dump_parents_to_current_event(tmp_path):
    sim = Simulator()
    rec = enable_capture(
        sim, CausalRecorder(capacity=16, dump_dir=str(tmp_path),
                            scenario={"seed": 9}))

    def boom(arg):
        rec.failure("qp_error", sim.now, qpn=3)

    sim.call_in(100, boom, None)
    sim.run()
    assert len(rec.dumps) == 1
    dump = rec.last_dump
    assert dump["schema"] == "repro.flight/1"
    assert dump["reason"] == "qp_error"
    assert dump["scenario"] == {"seed": 9}
    # the synthetic failure node is parented to the event that was executing
    failure = dump["events"][-1]
    assert failure["category"] == "failure"
    cause = [n for n in dump["events"] if n["id"] == failure["parent"]]
    assert cause and cause[0]["category"] == "call"
    import json, os
    path = dump["path"]
    assert os.path.exists(path)
    with open(path) as fh:
        assert json.load(fh)["reason"] == "qp_error"


# ----------------------------------------------------------------------
# guards + step
# ----------------------------------------------------------------------
def test_enable_capture_rejects_pending_calendar():
    sim = Simulator()
    sim.call_in(5, lambda a: None, None)
    with pytest.raises(SimulationError):
        enable_capture(sim, CausalRecorder())


def test_enable_capture_rejects_double_enable():
    sim = Simulator()
    enable_capture(sim, CausalRecorder())
    with pytest.raises(SimulationError):
        enable_capture(sim, CausalRecorder())


@pytest.mark.parametrize("backend", ["wheel", "heap"])
def test_step_records(backend):
    sim = Simulator(calendar=backend)
    rec = enable_capture(sim, CausalRecorder())
    log = []
    sim.call_in(5, log.append, "a")
    sim.call_in(9, log.append, "b")
    sim.step()
    assert log == ["a"] and sim.now == 5
    sim.step()
    assert log == ["a", "b"] and sim.now == 9
    assert all(n.fire_ns >= 0 for n in rec.nodes.values())
    with pytest.raises(IndexError):
        sim.step()
