"""Resource and Store semantics."""

import pytest

from helpers import run_procs
from repro.simnet import Resource, Store
from repro.simnet.kernel import SimulationError


def test_resource_grants_up_to_capacity(sim):
    res = Resource(sim, capacity=2)
    r1, r2, r3 = res.request(), res.request(), res.request()
    sim.run()
    assert r1.triggered and r2.triggered
    assert not r3.triggered
    assert res.in_use == 2 and res.queue_length == 1


def test_resource_fifo_order(sim):
    res = Resource(sim, capacity=1)
    order = []

    def worker(tag, hold):
        req = res.request()
        yield req
        order.append((tag, sim.now))
        yield sim.timeout(hold)
        res.release(req)

    run_procs(sim, worker("a", 10), worker("b", 10), worker("c", 10))
    assert order == [("a", 0), ("b", 10), ("c", 20)]


def test_release_pending_request_cancels(sim):
    res = Resource(sim, capacity=1)
    r1 = res.request()
    r2 = res.request()
    res.release(r2)  # cancel queued request
    sim.run()
    assert res.queue_length == 0
    res.release(r1)
    assert res.in_use == 0


def test_release_without_use_rejected(sim):
    res = Resource(sim, capacity=1)
    r = res.request()
    res.release(r)
    with pytest.raises(SimulationError):
        res.release(r)


def test_capacity_validation(sim):
    with pytest.raises(SimulationError):
        Resource(sim, capacity=0)


def test_acquire_helper_accounts_hold_time(sim):
    res = Resource(sim, capacity=1)

    def worker():
        yield from res.acquire(25)
        return sim.now

    assert run_procs(sim, worker()) == [25]
    assert res.in_use == 0


def test_store_fifo(sim):
    store = Store(sim)
    store.put(1)
    store.put(2)
    got = []

    def getter():
        a = yield store.get()
        b = yield store.get()
        got.extend([a, b])

    run_procs(sim, getter())
    assert got == [1, 2]


def test_store_blocking_get(sim):
    store = Store(sim)

    def getter():
        value = yield store.get()
        return (value, sim.now)

    def putter():
        yield sim.timeout(50)
        store.put("late")

    results = run_procs(sim, getter(), putter())
    assert results[0] == ("late", 50)


def test_store_try_get_and_snapshot(sim):
    store = Store(sim)
    assert store.try_get() is None
    store.put("x")
    store.put("y")
    assert store.snapshot() == ["x", "y"]
    assert store.try_get() == "x"
    assert len(store) == 1
