"""Topology descriptions and the store-and-forward switch model."""

import pytest

from repro.simnet import Simulator, SwitchConfig, Topology
from repro.simnet.fabric import FabricFrame, NicPort, Switch, host_delivery
from repro.simnet.faults import Corrupted
from repro.simnet.link import Link


# ----------------------------------------------------------------------
# Topology
# ----------------------------------------------------------------------
def test_point_to_point_is_direct():
    topo = Topology.point_to_point()
    assert topo.direct
    assert topo.hosts == ("client", "server")
    assert topo.switches == ()
    assert topo.edge_names == ("client-server",)


def test_star_two_hosts_collapses_to_direct_wire():
    topo = Topology.star(["client", "server"])
    assert topo.direct
    assert topo == Topology.point_to_point()


def test_star_shape():
    topo = Topology.star(["a", "b", "c"])
    assert topo.hosts == ("a", "b", "c")
    assert topo.switches == ("switch0",)
    assert topo.edge_names == ("a-switch0", "b-switch0", "c-switch0")
    assert not topo.direct
    assert topo.path("a", "c") == ["a", "switch0", "c"]
    assert topo.next_hops("switch0") == {"a": "a", "b": "b", "c": "c"}


def test_leaf_spine_shape():
    topo = Topology.leaf_spine([["h0", "h1"], ["h2"]], spines=2)
    assert set(topo.switches) == {"leaf0", "leaf1", "spine0", "spine1"}
    assert topo.path("h0", "h1") == ["h0", "leaf0", "h1"]
    # cross-leaf traffic goes through a spine (BFS tie-break: spine0)
    assert topo.path("h0", "h2") == ["h0", "leaf0", "spine0", "leaf1", "h2"]


def test_resolve_edge_accepts_either_order():
    topo = Topology.star(["a", "b", "c"])
    assert topo.resolve_edge("a-switch0") == 0
    assert topo.resolve_edge("switch0-a") == 0
    assert topo.resolve_edge("c-switch0") == 2


def test_resolve_edge_unknown_name_lists_known_edges():
    topo = Topology.star(["a", "b", "c"])
    with pytest.raises(ValueError, match="a-switch0, b-switch0, c-switch0"):
        topo.resolve_edge("a-nonexistent")


@pytest.mark.parametrize("kwargs, match", [
    (dict(hosts=("a",)), "at least two hosts"),
    (dict(hosts=("a", "b"), switches=("a",)), "unique"),
    (dict(hosts=("a", "b"), edges=(("a", "x"),)), "unknown node"),
    (dict(hosts=("a", "b"), edges=(("a", "a"),)), "self-edge"),
    (dict(hosts=("a", "b"), edges=(("a", "b"), ("b", "a"))), "duplicate edge"),
    (dict(hosts=("a", "b"), edges=()), "single-homed"),
])
def test_topology_validation(kwargs, match):
    with pytest.raises(ValueError, match=match):
        Topology(**kwargs)


def test_multihomed_host_rejected():
    with pytest.raises(ValueError, match="single-homed"):
        Topology(
            hosts=("a", "b"), switches=("s0", "s1"),
            edges=(("a", "s0"), ("a", "s1"), ("b", "s0"), ("s0", "s1")),
        )


def test_bandwidth_scale_validated_and_applied():
    topo = Topology.star(["a", "b", "c"], bandwidth_scale=(("c-switch0", 0.25),))
    assert topo.scale_for(topo.resolve_edge("c-switch0")) == 0.25
    assert topo.scale_for(0) == 1.0
    with pytest.raises(ValueError, match="unknown edge"):
        Topology.star(["a", "b", "c"], bandwidth_scale=(("oops", 0.5),))
    with pytest.raises(ValueError, match="must be > 0"):
        Topology.star(["a", "b", "c"], bandwidth_scale=(("a-switch0", 0.0),))


def test_topology_round_trips_through_dict():
    topo = Topology.star(
        ["a", "b", "c"],
        switch=SwitchConfig(policy="backpressure", port_queue_bytes=4096),
        bandwidth_scale=(("a-switch0", 0.5),),
    )
    assert Topology.from_dict(topo.to_dict()) == topo


def test_switch_config_validation():
    with pytest.raises(ValueError, match="policy"):
        SwitchConfig(policy="teleport")
    with pytest.raises(ValueError):
        SwitchConfig(port_queue_bytes=0)


# ----------------------------------------------------------------------
# Switch behavior (driven directly, no devices)
# ----------------------------------------------------------------------
def _mini_switch(policy: str, queue_bytes: int = 2048):
    """A switch with one ingress and one egress link; returns the pieces.

    The egress link is slow (1 byte/ns serialization at 8 Gbit/s) so
    frames pile up in the output queue while the test injects at ingress.
    """
    sim = Simulator()
    ingress = Link(sim, bandwidth_bps=800_000_000_000, propagation_delay_ns=10)
    egress = Link(sim, bandwidth_bps=8_000_000_000, propagation_delay_ns=10)
    sw = Switch(sim, "sw", SwitchConfig(
        policy=policy, port_queue_bytes=queue_bytes, forward_ns=0))
    delivered = []
    sw.add_port("src", ingress, 1)
    sw.add_port("dst", egress, 0)
    egress.attach(1, host_delivery(delivered.append))
    sw.build_routes({"dst": "dst", "src": "src"})
    sender = ingress.attach(0, lambda frame: None)
    return sim, sw, sender, delivered


def test_switch_forwards_and_counts():
    sim, sw, sender, delivered = _mini_switch("drop")
    for i in range(3):
        sender.transmit(FabricFrame(f"msg{i}", 512, "dst"), 512)
    sim.run()
    assert delivered == ["msg0", "msg1", "msg2"]
    assert sw.received == 3
    port = sw.ports["dst"]
    assert port.forwarded == 3
    assert port.forwarded_bytes == 3 * 512
    assert port.drops == 0
    assert port.peak_queue_bytes > 0


def test_switch_drop_policy_tail_drops_at_full_queue():
    sim, sw, sender, delivered = _mini_switch("drop", queue_bytes=1024)
    for i in range(8):
        sender.transmit(FabricFrame(f"msg{i}", 512, "dst"), 512)
    sim.run()
    port = sw.ports["dst"]
    assert port.drops > 0
    assert port.dropped_bytes == port.drops * 512
    assert len(delivered) == 8 - port.drops
    # FIFO: the survivors are a prefix-ordered subsequence
    assert delivered == sorted(delivered, key=lambda m: int(m[3:]))


def test_switch_backpressure_policy_is_lossless():
    sim, sw, sender, delivered = _mini_switch("backpressure", queue_bytes=1024)
    for i in range(8):
        sender.transmit(FabricFrame(f"msg{i}", 512, "dst"), 512)
    sim.run()
    port = sw.ports["dst"]
    assert port.drops == 0
    assert port.backpressured > 0
    assert delivered == [f"msg{i}" for i in range(8)]
    assert port.pending_bytes == 0  # fully drained


def test_switch_oversized_frame_admitted_to_empty_queue():
    sim, sw, sender, delivered = _mini_switch("drop", queue_bytes=256)
    sender.transmit(FabricFrame("big", 4096, "dst"), 4096)
    sim.run()
    assert delivered == ["big"]


def test_switch_discards_corrupt_frames_at_ingress():
    sim, sw, sender, delivered = _mini_switch("drop")
    sender.transmit(Corrupted(FabricFrame("junk", 512, "dst")), 512)
    sender.transmit(FabricFrame("good", 512, "dst"), 512)
    sim.run()
    assert delivered == ["good"]
    assert sw.corrupt_dropped == 1


def test_fault_exempt_frames_bypass_the_full_queue():
    class MgmtPayload:
        fault_exempt = True

    sim, sw, sender, delivered = _mini_switch("drop", queue_bytes=1024)
    for i in range(6):
        sender.transmit(FabricFrame(f"msg{i}", 512, "dst"), 512)
    mgmt = MgmtPayload()
    sender.transmit(FabricFrame(mgmt, 64, "dst"), 64)
    sim.run()
    assert mgmt in delivered
    assert sw.ports["dst"].drops > 0  # data frames did drop around it


def test_switch_raises_on_unroutable_destination():
    sim, sw, sender, _ = _mini_switch("drop")
    sender.transmit(FabricFrame("lost", 512, "nowhere"), 512)
    with pytest.raises(Exception, match="no route"):
        sim.run()


def test_nic_port_wraps_payloads_with_resolved_destination():
    sim = Simulator()
    link = Link(sim, bandwidth_bps=8_000_000_000, propagation_delay_ns=5)
    seen = []
    link.attach(1, seen.append)
    direction = link.attach(0, lambda f: None)
    nic = NicPort(direction, lambda payload: "sink")
    nic.transmit("hello", 64)
    sim.run()
    (frame,) = seen
    assert isinstance(frame, FabricFrame)
    assert frame.payload == "hello" and frame.dst == "sink"
    assert frame.wire_bytes == 64


def test_host_delivery_unwraps_fabric_and_corrupt_frames():
    got = []
    deliver = host_delivery(got.append)
    deliver(FabricFrame("plain", 10, "h"))
    deliver(Corrupted(FabricFrame("bad", 10, "h")))
    deliver("raw")
    assert got[0] == "plain"
    assert isinstance(got[1], Corrupted) and got[1].payload == "bad"
    assert got[2] == "raw"
