"""Pin the public API surface so accidental breakage fails CI readably.

The snapshot (``tests/api_snapshot.json``) records, for each public
module, its ``__all__`` and — for every callable export — the parameter
names, kinds, and whether each has a default.  Annotations and default
*values* are deliberately excluded so the snapshot is stable across
Python versions and cosmetic refactors; renaming or removing a parameter,
dropping an export, or changing positional/keyword-ness is exactly what
should fail.

To bless an intentional change::

    REPRO_UPDATE_API_SNAPSHOT=1 python -m pytest tests/test_public_api.py
"""

from __future__ import annotations

import importlib
import inspect
import json
import os
from pathlib import Path

import pytest

MODULES = [
    "repro",
    "repro.exs",
    "repro.obs",
    "repro.check",
    "repro.fabric",
    "repro.simnet.fabric",
    "repro.apps.incast",
]
SNAPSHOT = Path(__file__).parent / "api_snapshot.json"

_KINDS = {
    inspect.Parameter.POSITIONAL_ONLY: "pos",
    inspect.Parameter.POSITIONAL_OR_KEYWORD: "pos_or_kw",
    inspect.Parameter.VAR_POSITIONAL: "*args",
    inspect.Parameter.KEYWORD_ONLY: "kw",
    inspect.Parameter.VAR_KEYWORD: "**kwargs",
}


def _describe_callable(obj) -> list:
    try:
        sig = inspect.signature(obj)
    except (TypeError, ValueError):
        return []
    return [
        [name, _KINDS[p.kind], p.default is not inspect.Parameter.empty]
        for name, p in sig.parameters.items()
    ]


def _describe_module(name: str) -> dict:
    mod = importlib.import_module(name)
    exports = sorted(mod.__all__)
    surface = {"__all__": exports, "signatures": {}}
    for export in exports:
        obj = getattr(mod, export)
        if callable(obj):
            surface["signatures"][export] = _describe_callable(obj)
    return surface


def _current_surface() -> dict:
    return {name: _describe_module(name) for name in MODULES}


def test_public_api_matches_snapshot():
    current = _current_surface()
    if os.environ.get("REPRO_UPDATE_API_SNAPSHOT"):
        SNAPSHOT.write_text(json.dumps(current, indent=2, sort_keys=True) + "\n")
        pytest.skip("snapshot regenerated")
    assert SNAPSHOT.exists(), (
        "tests/api_snapshot.json missing; regenerate with "
        "REPRO_UPDATE_API_SNAPSHOT=1 python -m pytest tests/test_public_api.py"
    )
    recorded = json.loads(SNAPSHOT.read_text())

    for name in MODULES:
        want, got = recorded[name], current[name]
        missing = sorted(set(want["__all__"]) - set(got["__all__"]))
        added = sorted(set(got["__all__"]) - set(want["__all__"]))
        assert not missing, f"{name}: exports removed from __all__: {missing}"
        assert not added, (
            f"{name}: new exports {added} — bless with REPRO_UPDATE_API_SNAPSHOT=1"
        )
        for export, sig in want["signatures"].items():
            assert got["signatures"].get(export) == sig, (
                f"{name}.{export} signature changed:\n"
                f"  recorded: {sig}\n  current:  {got['signatures'].get(export)}"
            )


def test_every_export_exists():
    for name in MODULES:
        mod = importlib.import_module(name)
        for export in mod.__all__:
            assert hasattr(mod, export), f"{name}.__all__ lists missing {export!r}"
