"""Chaos suite for the zero-copy payload plane.

The data path forwards ``memoryview`` slices of sender memory all the way
to final placement (see the module docstring of :mod:`repro.hosts.memory`).
That is only sound if the aliasing rule holds under the nastiest schedules
the wire can produce: drops force retransmissions that *replay the original
view-carrying message*, duplication delivers the same view twice, and the
application reuses its send buffer the moment the completion arrives.

Every test here runs real bytes with the view-pinning debug assertions
enabled (:func:`repro.hosts.memory.set_pin_debug`), so any write into an
in-flight source range or placement of a released view raises inside the
engine and fails the test.  On top of that the delivered stream must be
bit-identical to what the application sent, and the per-connection
:class:`~repro.obs.CopyMeter` must account for every byte: exactly one
placement copy per payload byte on the direct path, exactly two on the
forced-indirect path (ring placement + ring→user copy-out).

Set ``REPRO_CHAOS_QUALITY=smoke`` for a reduced sweep (CI smoke target).
"""

import os
import random

import pytest

from helpers import run_procs
from repro.config import ScenarioConfig
from repro.core import ProtocolMode
from repro.exs import TRANSPORT_WWI, BlockingSocket, ExsEventType, ExsSocketOptions
from repro.hosts.memory import set_pin_debug
from repro.simnet import FaultProfile
from repro.testbed import Testbed

SMOKE = os.environ.get("REPRO_CHAOS_QUALITY", "").lower() == "smoke"
SEEDS = (1,) if SMOKE else (1, 2, 3)
PAYLOAD_BYTES = 48_000 if SMOKE else 96_000

CHAOS = FaultProfile(drop_prob=0.03, duplicate_prob=0.03)


@pytest.fixture(autouse=True)
def pin_debug():
    """Every test in this module runs with pin assertions armed."""
    set_pin_debug(True)
    yield
    set_pin_debug(False)


def payload_for(seed, nbytes=PAYLOAD_BYTES):
    return random.Random(seed * 6211 + 5).randbytes(nbytes)


def make_testbed(seed, faults=None, mode=None):
    scenario = ScenarioConfig(seed=seed, faults=faults)
    tb = Testbed.from_scenario(scenario)
    # These assertions describe the WWI plane's copy discipline (direct=1,
    # indirect=2 copies/byte); pin the transport so a REPRO_TRANSPORT
    # matrix run doesn't redirect them onto the eager/rendezvous plane.
    options = ExsSocketOptions(
        mode=mode if mode is not None else ProtocolMode.DYNAMIC,
        transport=TRANSPORT_WWI,
    )
    return tb, options


def run_transfer(tb, payload, *, options=None, chunk=8_000, recv=8_192, port=4321):
    """Stream *payload* client→server; returns bytes + both connections."""
    if options is None:
        options = ExsSocketOptions(transport=TRANSPORT_WWI)
    out = {}

    def server():
        conn = yield from BlockingSocket.accept_one(tb.server, port, options=options)
        chunks = []
        while True:
            data = yield from conn.recv_bytes(recv)
            if data == b"":
                break
            chunks.append(data)
        out["data"] = b"".join(chunks)
        out["rx_conn"] = conn.sock.conn

    def client():
        conn = yield from BlockingSocket.connect(tb.client, port, options=options)
        for off in range(0, len(payload), chunk):
            yield from conn.send_bytes(payload[off:off + chunk])
        out["tx_conn"] = conn.sock.conn
        yield from conn.close()

    run_procs(tb.sim, server(), client(), max_events=200_000_000)
    return out


def assert_plane_clean(*conns):
    """No pin violations anywhere, and every pin released by run end."""
    for conn in conns:
        meter = conn.copy_meter
        assert meter.pin_violations == 0
        assert meter.pins_outstanding == 0


# ---------------------------------------------------------------------------
# chaos: retransmission replays pinned views, duplication re-delivers them
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("seed", SEEDS)
def test_chaos_stream_is_bit_identical_with_pins_armed(seed):
    """Drops + duplicates with real bytes: the retransmission path replays
    the original view-carrying messages and the wire re-delivers some of
    them twice, yet the delivered stream is bit-identical and no in-flight
    source range is ever overwritten (pin assertions would raise)."""
    tb, _ = make_testbed(seed, faults=CHAOS)
    payload = payload_for(seed)
    out = run_transfer(tb, payload, chunk=6_000)
    assert out["data"] == payload
    assert_plane_clean(out["tx_conn"], out["rx_conn"])
    # non-vacuous: the wire actually misbehaved and recovery actually ran
    assert tb.impairment.dropped_total + tb.impairment.duplicated_total > 0
    if tb.impairment.dropped_total:
        rel = tb.client_device.reliability.stats
        assert rel.retransmits > 0


def test_sender_buffer_reuse_under_duplication_never_corrupts():
    """The hard aliasing case: one send buffer, refilled with different
    bytes for every message the moment the previous SEND completes, while
    the wire duplicates and drops frames carrying views of that buffer.

    A duplicate that arrives *after* the refill still carries a view of the
    mutated memory — the receiver's sequence check must discard it without
    dereferencing the payload, or the assembled stream would contain bytes
    from the wrong message.  The refill itself proves every pin on the
    buffer was released by completion time (a live pin would raise)."""
    tb, wwi_options = make_testbed(7, faults=FaultProfile(drop_prob=0.02, duplicate_prob=0.10))
    msg_bytes = 8_192
    n_msgs = 6 if SMOKE else 12
    rng = random.Random(40427)
    pieces = [rng.randbytes(msg_bytes) for _ in range(n_msgs)]
    out = {}

    def server():
        conn = yield from BlockingSocket.accept_one(tb.server, 4321, options=wwi_options)
        chunks = []
        while True:
            data = yield from conn.recv_bytes(msg_bytes)
            if data == b"":
                break
            chunks.append(data)
        out["data"] = b"".join(chunks)
        out["rx_conn"] = conn.sock.conn

    def client():
        conn = yield from BlockingSocket.connect(tb.client, 4321, options=wwi_options)
        buf = conn.stack.alloc(msg_bytes, label="zc:reuse")
        mr = yield from conn.stack.mregister(buf)
        for piece in pieces:
            buf.fill(piece)  # raises under pin debug if any view is in flight
            conn.sock.send(buf, mr, msg_bytes, conn.eq)
            (yield conn.eq.dequeue()).expect(ExsEventType.SEND)
        conn.stack.mderegister(mr)
        out["tx_conn"] = conn.sock.conn
        yield from conn.close()

    run_procs(tb.sim, server(), client(), max_events=200_000_000)
    assert out["data"] == b"".join(pieces)
    assert_plane_clean(out["tx_conn"], out["rx_conn"])
    assert tb.impairment.duplicated_total > 0
    rel = tb.server_device.reliability.stats
    assert rel.duplicates_dropped > 0  # stale views arrived and were discarded


def test_chaos_run_with_meters_is_deterministic():
    """Same seed → same bytes *and* same copy accounting, pins included."""

    def run_once():
        tb, _ = make_testbed(4, faults=CHAOS)
        out = run_transfer(tb, payload_for(4))
        return (out["data"],
                out["tx_conn"].copy_meter.snapshot(),
                out["rx_conn"].copy_meter.snapshot())

    assert run_once() == run_once()


# ---------------------------------------------------------------------------
# copy accounting: "exactly once" on the direct path, exactly twice indirect
# ---------------------------------------------------------------------------

def test_direct_path_copies_each_payload_byte_exactly_once():
    """Forced-direct transfer: every payload byte is copied exactly once
    end to end (final placement into the advertised user buffer), and the
    sender performs zero payload copies — only view forwards."""
    tb, options = make_testbed(11, mode=ProtocolMode.DIRECT_ONLY)
    payload = payload_for(11)
    out = run_transfer(tb, payload, options=options, chunk=8_192, recv=8_192)
    assert out["data"] == payload
    assert out["tx_conn"].tx_stats.indirect_transfers == 0
    rx_meter = out["rx_conn"].copy_meter
    tx_meter = out["tx_conn"].copy_meter
    assert rx_meter.payload_bytes_copied == len(payload)
    assert tx_meter.payload_copies == 0
    assert tx_meter.views_forwarded > 0
    assert_plane_clean(out["tx_conn"], out["rx_conn"])


def test_indirect_path_copies_each_payload_byte_exactly_twice():
    """Forced-indirect transfer: ring placement + ring→user copy-out, so
    the receiver's meter records exactly two copies per payload byte."""
    tb, options = make_testbed(12, mode=ProtocolMode.INDIRECT_ONLY)
    payload = payload_for(12)
    out = run_transfer(tb, payload, options=options, chunk=8_192, recv=8_192)
    assert out["data"] == payload
    assert out["tx_conn"].tx_stats.direct_transfers == 0
    rx_meter = out["rx_conn"].copy_meter
    assert rx_meter.payload_bytes_copied == 2 * len(payload)
    assert out["tx_conn"].copy_meter.payload_copies == 0
    assert_plane_clean(out["tx_conn"], out["rx_conn"])


def test_direct_accounting_survives_chaos():
    """The exactly-once invariant is per *delivered* byte, not per wire
    frame: retransmitted and duplicated frames must not inflate the
    placement count on the forced-direct path."""
    tb, options = make_testbed(
        13,
        faults=FaultProfile(drop_prob=0.08, duplicate_prob=0.08),
        mode=ProtocolMode.DIRECT_ONLY,
    )
    payload = payload_for(13)
    out = run_transfer(tb, payload, options=options, chunk=4_096, recv=8_192)
    assert out["data"] == payload
    assert tb.impairment.dropped_total + tb.impairment.duplicated_total > 0
    assert out["rx_conn"].copy_meter.payload_bytes_copied == len(payload)
    assert_plane_clean(out["tx_conn"], out["rx_conn"])
