"""Flight recorder: automatic blackbox dumps when the stack dies.

A total-loss run exhausts ``retry_cnt`` and moves the QP to ERROR; the
bounded flight ring must auto-dump a replayable JSON artifact whose tail
reconstructs — via parent links — the causal chain from the last
retransmit timer to the QP ERROR transition (the ISSUE acceptance
criterion), without ever paying full-capture memory.
"""

import json
import os

import pytest

from helpers import run_procs
from repro.config import ScenarioConfig
from repro.exs import BlockingSocket, ExsError
from repro.obs.causal import flight_chain
from repro.simnet import FLIGHT_SCHEMA, FaultProfile
from repro.testbed import Testbed
from repro.verbs import ReliabilityConfig


def _run_retry_exhaustion(tmp_path, flight=128):
    scenario = ScenarioConfig(
        seed=3,
        faults=FaultProfile(drop_prob=1.0),
        reliability=ReliabilityConfig(retry_timeout_ns=100_000, retry_cnt=3),
        flight_recorder=flight,
        telemetry_dir=str(tmp_path),
    )
    tb = Testbed.from_scenario(scenario)

    def server():
        try:
            conn = yield from BlockingSocket.accept_one(tb.server, 4321)
            yield from conn.recv_bytes(8192)
        except ExsError as exc:
            return str(exc)

    def client():
        try:
            conn = yield from BlockingSocket.connect(tb.client, 4321)
            yield from conn.send_bytes(b"x" * 20_000)
        except ExsError as exc:
            return str(exc)

    results = run_procs(tb.sim, server(), client(), max_events=50_000_000)
    assert all(r is not None for r in results), "both sides must observe the error"
    return tb, scenario


def test_qp_error_auto_dumps_flight_artifact(tmp_path):
    tb, scenario = _run_retry_exhaustion(tmp_path)
    rec = tb.causal
    assert rec is not None
    reasons = [d["reason"] for d in rec.dumps]
    assert "qp_error" in reasons
    dump = next(d for d in rec.dumps if d["reason"] == "qp_error")

    # written to disk, replayable: embeds the exact scenario
    assert os.path.exists(dump["path"])
    with open(dump["path"]) as fh:
        loaded = json.load(fh)
    assert loaded["schema"] == FLIGHT_SCHEMA
    assert loaded["reason"] == "qp_error"
    assert ScenarioConfig.from_dict(loaded["scenario"]) == scenario
    assert loaded["context"]["status"] == "retry_exceeded"


def test_dump_tail_reconstructs_retransmit_chain(tmp_path):
    """The acceptance criterion: failure ← rto_timer ← rto_timer ← ... —
    the dump's tail explains *why* the QP died, by parent links alone."""
    tb, _ = _run_retry_exhaustion(tmp_path)
    dump = next(d for d in tb.causal.dumps if d["reason"] == "qp_error")
    chain = flight_chain(dump)
    assert chain[0]["category"] == "failure"
    assert chain[0]["meta"]["reason"] == "qp_error"
    # immediate cause: the final retransmission timer expiry
    assert chain[1]["category"] == "rto_timer"
    rto_links = [n for n in chain if n["category"] == "rto_timer"]
    # retry_cnt=3 → initial arm + 3 retries of exponential backoff on the chain
    assert len(rto_links) >= 3
    fires = [n["fire_ns"] for n in rto_links]
    assert fires == sorted(fires, reverse=True), "chain walks backwards in time"
    # exponential backoff: each successive timer waited longer than the last
    waits = [n["fire_ns"] - n["sched_ns"] for n in reversed(rto_links)]
    assert all(b > a for a, b in zip(waits, waits[1:]))


def test_ring_stays_bounded_during_failure_run(tmp_path):
    tb, _ = _run_retry_exhaustion(tmp_path, flight=64)
    rec = tb.causal
    # retained nodes: the 64-deep ring plus still-pending placements only
    assert len(rec.fired_nodes()) <= 64
    assert len(rec.nodes) <= 64 + 32
    for dump in rec.dumps:
        assert len(dump["events"]) <= 64


def test_failure_run_is_deterministic(tmp_path):
    a, _ = _run_retry_exhaustion(tmp_path / "a")
    b, _ = _run_retry_exhaustion(tmp_path / "b")

    # Device/QP numbers come from a process-global counter and the artifact
    # paths from tmp dirs, so compare the causal skeleton: same failures at
    # the same times with the same DAG shape.
    def skeleton(dumps):
        return [
            (d["reason"], d["time_ns"],
             [(n["id"], n["parent"], n["category"], n["sched_ns"], n["fire_ns"])
              for n in d["events"]])
            for d in dumps
        ]

    assert skeleton(a.causal.dumps) == skeleton(b.causal.dumps)
