"""Chaos suite for the eager/rendezvous SEND-RECV transport.

The alternative data plane stages small messages through receiver bounce
slots and rendezvous-places large ones into user memory, all over the same
lossy RC substrate as the WWI plane.  Drops replay eager SENDs and
rendezvous WRITEs (both carrying pinned views), duplicates re-deliver
them, and the RTS/CTS handshake itself rides the control path — so every
failure mode of the reliability layer hits the transport's bookkeeping.

As in :mod:`tests.chaos.test_zero_copy_integrity`, every run arms the
view-pinning debug assertions and checks exact per-byte copy accounting:
two copies per eager byte (slot placement + copy-out), one per rendezvous
byte (placement into the granted buffer).

Set ``REPRO_CHAOS_QUALITY=smoke`` for a reduced sweep (CI smoke target).
"""

import os
import random

import pytest

from helpers import run_procs
from repro.exs import TRANSPORT_EAGER_RENDEZVOUS, BlockingSocket, ExsSocketOptions
from repro.hosts.memory import set_pin_debug
from repro.simnet import FaultProfile
from repro.testbed import Testbed

SMOKE = os.environ.get("REPRO_CHAOS_QUALITY", "").lower() == "smoke"
SEEDS = (1,) if SMOKE else (1, 2, 3)

CHAOS = FaultProfile(drop_prob=0.03, duplicate_prob=0.03)
RDV = ExsSocketOptions(transport=TRANSPORT_EAGER_RENDEZVOUS)


@pytest.fixture(autouse=True)
def pin_debug():
    set_pin_debug(True)
    yield
    set_pin_debug(False)


def run_transfer(tb, pieces, *, recv=8_192, waitall=False, port=4700):
    out = {}

    def server():
        conn = yield from BlockingSocket.accept_one(tb.server, port, options=RDV)
        chunks = []
        while True:
            data = yield from conn.recv_bytes(recv, waitall=waitall)
            if data == b"":
                break
            chunks.append(data)
        out["data"] = b"".join(chunks)
        out["rx_conn"] = conn.sock.conn

    def client():
        conn = yield from BlockingSocket.connect(tb.client, port, options=RDV)
        for piece in pieces:
            yield from conn.send_bytes(piece)
        out["tx_conn"] = conn.sock.conn
        yield from conn.close()

    run_procs(tb.sim, server(), client(), max_events=200_000_000)
    return out


def assert_accounting(out, pieces):
    """Bit-identical stream + exact per-class copy counts + clean pins."""
    assert out["data"] == b"".join(pieces)
    eager = sum(len(p) for p in pieces if len(p) <= RDV.eager_threshold)
    rdv = sum(len(p) for p in pieces if len(p) > RDV.eager_threshold)
    tx = out["tx_conn"].tx_stats
    assert tx.indirect_bytes == eager
    assert tx.direct_bytes == rdv
    meter = out["rx_conn"].copy_meter
    assert meter.payload_bytes_copied == 2 * eager + rdv
    for conn in (out["tx_conn"], out["rx_conn"]):
        assert conn.copy_meter.pin_violations == 0
        assert conn.copy_meter.pins_outstanding == 0


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("waitall", (False, True))
def test_eager_chaos_stream_is_bit_identical(seed, waitall):
    """Eager-only traffic under drops + duplicates: retransmitted SENDs
    replay bounce-slot placements, yet delivery order, copy counts, and
    pins all stay exact."""
    tb = Testbed(seed=seed, faults=CHAOS)
    rng = random.Random(seed * 7919 + 1)
    n = 6 if SMOKE else 12
    pieces = [rng.randbytes(rng.randrange(64, RDV.eager_threshold)) for _ in range(n)]
    out = run_transfer(tb, pieces, waitall=waitall)
    assert_accounting(out, pieces)
    assert tb.impairment.dropped_total + tb.impairment.duplicated_total > 0


@pytest.mark.parametrize("seed", SEEDS)
def test_mixed_transport_chaos_preserves_accounting(seed):
    """Interleaved eager and rendezvous messages under chaos: the RTS/CTS
    handshake and the data plane recover independently, and each byte is
    still copied exactly its class's count."""
    tb = Testbed(seed=seed + 100, faults=CHAOS)
    rng = random.Random(seed * 104729 + 3)
    pieces = []
    for _ in range(4 if SMOKE else 8):
        pieces.append(rng.randbytes(rng.randrange(64, 8_000)))
        pieces.append(rng.randbytes(rng.randrange(20_000, 80_000)))
    out = run_transfer(tb, pieces, recv=16_384)
    assert_accounting(out, pieces)
    assert tb.impairment.dropped_total + tb.impairment.duplicated_total > 0
    if tb.impairment.dropped_total:
        assert tb.client_device.reliability.stats.retransmits > 0


def test_mixed_transport_chaos_is_deterministic():
    """Same seed → same bytes and same copy accounting under chaos."""

    def run_once():
        tb = Testbed(seed=9, faults=CHAOS)
        rng = random.Random(424243)
        pieces = [rng.randbytes(n) for n in (500, 30_000, 7_000, 55_000, 1_200)]
        out = run_transfer(tb, pieces, recv=10_000)
        return (out["data"],
                out["tx_conn"].copy_meter.snapshot(),
                out["rx_conn"].copy_meter.snapshot())

    assert run_once() == run_once()
