"""Chaos suite: full-stack stream semantics over an impaired wire.

Every transfer here runs the real EXS stack (rings, credits, adverts) over
the RC reliability layer over a faulty link.  The Theorem-1 safety
invariants (`repro.core.invariants.require`) execute inline in the engine,
so any ordering or accounting violation raises ``SafetyViolation`` and
fails the test — byte-exact payload equality plus a clean run *is* the
invariant check.

Set ``REPRO_CHAOS_QUALITY=smoke`` for a reduced sweep (CI smoke target).
"""

import os
import random

import pytest

from helpers import run_procs
from repro.exs import BlockingSocket, ExsError
from repro.simnet import DUP_AND_CORRUPT, FaultProfile, ImpairmentModel
from repro.testbed import Testbed
from repro.verbs import ReliabilityConfig

SMOKE = os.environ.get("REPRO_CHAOS_QUALITY", "").lower() == "smoke"
SEEDS = (1,) if SMOKE else (1, 2, 3)
DROP_RATES = (0.02,) if SMOKE else (0.01, 0.05)
PAYLOAD_BYTES = 60_000 if SMOKE else 120_000

REL_FIELDS = (
    "retransmits", "timeouts", "naks_sent", "naks_received",
    "rnr_naks_sent", "rnr_naks_received", "duplicates_dropped",
    "gaps_detected", "corrupt_discarded", "qp_fatal", "recoveries",
)


def payload_for(seed, nbytes=PAYLOAD_BYTES):
    return random.Random(seed * 7919 + 11).randbytes(nbytes)


def rel_totals(tb):
    """Client+server reliability counters as a comparable dict."""
    c = tb.client_device.reliability.stats
    s = tb.server_device.reliability.stats
    return {f: getattr(c, f) + getattr(s, f) for f in REL_FIELDS}


def fault_totals(tb):
    m = tb.impairment
    return (m.dropped_total, m.duplicated_total, m.corrupted_total,
            m.down_dropped_total, m.acks_dropped_total)


def run_transfer(tb, payload, *, chunk=10_000, recv=8192, port=4321):
    """Stream *payload* client→server; returns received bytes + end times."""
    out = {}

    def server():
        conn = yield from BlockingSocket.accept_one(tb.server, port)
        chunks = []
        while True:
            data = yield from conn.recv_bytes(recv)
            if data == b"":
                break
            chunks.append(data)
        out["data"] = b"".join(chunks)
        out["server_done_ns"] = tb.sim.now

    def client():
        conn = yield from BlockingSocket.connect(tb.client, port)
        for off in range(0, len(payload), chunk):
            yield from conn.send_bytes(payload[off:off + chunk])
        yield from conn.close()
        out["client_done_ns"] = tb.sim.now

    run_procs(tb.sim, server(), client(), max_events=200_000_000)
    return out


# ---------------------------------------------------------------------------
# acceptance: faults disabled == faults absent, bit for bit
# ---------------------------------------------------------------------------

def test_zero_impairment_is_bit_identical_to_baseline():
    """An all-zero fault profile (reliability machinery armed but idle) must
    reproduce the unimpaired simulation exactly: same bytes, same end times."""
    payload = payload_for(5)
    baseline = Testbed(seed=5)
    ref = run_transfer(baseline, payload)

    tb = Testbed(seed=5, faults=ImpairmentModel(FaultProfile(), seed=999))
    out = run_transfer(tb, payload)

    assert ref["data"] == payload
    assert out["data"] == payload
    assert out["client_done_ns"] == ref["client_done_ns"]
    assert out["server_done_ns"] == ref["server_done_ns"]
    totals = rel_totals(tb)
    assert totals["retransmits"] == 0 and totals["timeouts"] == 0
    assert fault_totals(tb) == (0, 0, 0, 0, 0)


# ---------------------------------------------------------------------------
# drop sweep: zero loss, zero reorder while retries suffice
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("drop", DROP_RATES)
def test_drop_sweep_delivers_every_byte_in_order(drop, seed):
    tb = Testbed(seed=seed, faults=FaultProfile(drop_prob=drop))
    payload = payload_for(seed)
    out = run_transfer(tb, payload)
    assert out["data"] == payload
    # anything the wire ate must have been recovered by a retransmission
    if tb.impairment.dropped_total:
        assert rel_totals(tb)["retransmits"] > 0
    assert rel_totals(tb)["qp_fatal"] == 0


def test_heavy_drop_actually_exercises_recovery():
    """Guard against a vacuously green sweep: at 20% drop over many small
    chunks the impairment model must fire and recovery must engage.  (The
    seed is pinned to a run where retries suffice; some seeds legitimately
    exhaust retry_cnt at this loss rate and surface an error instead.)"""
    tb = Testbed(seed=2, faults=FaultProfile(drop_prob=0.2))
    out = run_transfer(tb, payload_for(2), chunk=4_000)
    assert out["data"] == payload_for(2)
    assert tb.impairment.dropped_total > 0
    totals = rel_totals(tb)
    assert totals["retransmits"] > 0
    assert totals["recoveries"] > 0


def test_rechunking_under_loss_preserves_stream_order():
    """Stream semantics survive loss: odd recv sizes re-chunk the stream
    while the transport is dropping and recovering frames underneath."""
    tb = Testbed(seed=2, faults=FaultProfile(drop_prob=0.03))
    payload = payload_for(2)
    out = run_transfer(tb, payload, chunk=7_777, recv=1_013)
    assert out["data"] == payload


# ---------------------------------------------------------------------------
# determinism: one seed, one simulation
# ---------------------------------------------------------------------------

def test_chaos_runs_are_bit_identical_per_seed():
    def run_once():
        tb = Testbed(seed=4, faults=FaultProfile(drop_prob=0.05,
                                                 duplicate_prob=0.02))
        out = run_transfer(tb, payload_for(4))
        return out, rel_totals(tb), fault_totals(tb)

    first, second = run_once(), run_once()
    assert first == second


# ---------------------------------------------------------------------------
# duplication + corruption: integrity, not just delivery
# ---------------------------------------------------------------------------

def test_duplication_and_corruption_do_not_corrupt_the_stream():
    tb = Testbed(seed=3, faults=DUP_AND_CORRUPT)
    payload = payload_for(3)
    out = run_transfer(tb, payload)
    assert out["data"] == payload
    assert tb.impairment.duplicated_total + tb.impairment.corrupted_total > 0
    totals = rel_totals(tb)
    assert totals["duplicates_dropped"] + totals["corrupt_discarded"] > 0


# ---------------------------------------------------------------------------
# link flap: scheduled outage mid-transfer
# ---------------------------------------------------------------------------

def test_link_flap_mid_transfer_recovers():
    faults = ImpairmentModel(FaultProfile(), seed=7,
                             down_windows=((30_000, 900_000),))
    tb = Testbed(seed=2, faults=faults)
    payload = payload_for(6)
    out = run_transfer(tb, payload)
    assert out["data"] == payload
    assert faults.down_dropped_total + faults.acks_dropped_total > 0
    assert rel_totals(tb)["retransmits"] > 0
    assert rel_totals(tb)["qp_fatal"] == 0
    # progress resumed only after the outage window closed
    assert out["server_done_ns"] > 900_000


# ---------------------------------------------------------------------------
# retry exhaustion: fail loudly, never hang
# ---------------------------------------------------------------------------

def test_total_loss_surfaces_error_on_both_sides_without_hanging():
    """drop_prob=1.0 kills every data frame.  Retries must exhaust, both
    QPs must reach ERROR, and both blocked applications must observe an
    ExsError — the simulation terminates instead of deadlocking."""
    tb = Testbed(
        seed=3,
        faults=FaultProfile(drop_prob=1.0),
        reliability=ReliabilityConfig(retry_timeout_ns=100_000, retry_cnt=3),
    )

    def server():
        try:
            conn = yield from BlockingSocket.accept_one(tb.server, 4321)
            yield from conn.recv_bytes(8192)
        except ExsError as exc:
            return str(exc)
        return None

    def client():
        try:
            conn = yield from BlockingSocket.connect(tb.client, 4321)
            yield from conn.send_bytes(b"x" * 20_000)
        except ExsError as exc:
            return str(exc)
        return None

    results = run_procs(tb.sim, server(), client(), max_events=50_000_000)
    assert results[0] is not None, "server never saw the failure"
    assert results[1] is not None, "client never saw the failure"
    assert rel_totals(tb)["qp_fatal"] >= 1
    from repro.verbs import QPState
    dead = [qp for dev in (tb.client_device, tb.server_device)
            for qp in dev._qps.values() if qp.state is QPState.ERROR]
    assert dead, "no QP reached ERROR state"


def test_total_loss_run_is_deterministic():
    """The failure path itself is reproducible: same seed, same error
    surfacing time and counters."""

    def run_once():
        tb = Testbed(
            seed=9,
            faults=FaultProfile(drop_prob=1.0),
            reliability=ReliabilityConfig(retry_timeout_ns=100_000, retry_cnt=2),
        )

        def client():
            try:
                conn = yield from BlockingSocket.connect(tb.client, 4000)
                yield from conn.send_bytes(b"z" * 5_000)
            except ExsError:
                return tb.sim.now
            return None

        def server():
            try:
                conn = yield from BlockingSocket.accept_one(tb.server, 4000)
                yield from conn.recv_bytes(1024)
            except ExsError:
                return tb.sim.now
            return None

        res = run_procs(tb.sim, server(), client(), max_events=50_000_000)
        return res, rel_totals(tb)

    assert run_once() == run_once()
