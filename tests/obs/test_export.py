"""Exporters and the ``python -m repro.obs`` CLI."""

import io
import json
import re

import pytest

from repro.apps import BlastConfig, ExponentialSizes, run_blast
from repro.obs import (SCHEMA_VERSION, load_jsonl, render_report,
                       validate_records, write_csv, write_jsonl,
                       write_prometheus)
from repro.obs.__main__ import main as obs_main
from repro.testbed import Testbed


@pytest.fixture(scope="module")
def session():
    tb = Testbed(seed=4)
    tel = tb.attach_telemetry(sample_interval_ns=50_000)
    cfg = BlastConfig(total_messages=30, sizes=ExponentialSizes(seed=4))
    run_blast(cfg, testbed=tb, seed=4, max_events=50_000_000)
    tel.finish(scenario="export-test", seed=4)
    return tel


def test_jsonl_round_trip(session):
    buf = io.StringIO()
    n = write_jsonl(buf, session)
    assert n == len(buf.getvalue().splitlines())
    buf.seek(0)
    art = load_jsonl(buf)

    assert art.meta["scenario"] == "export-test"
    assert art.end_ns == session.sim.now
    assert sorted(art.series) == sorted(session.sampler.series)
    for name, ts in art.series.items():
        assert ts.points == session.sampler.series[name].points
    assert len(art.spans) == len(session.spans())
    assert [s.to_dict() for s in art.spans] == [s.to_dict() for s in session.spans()]
    by_name = {h["name"]: h for h in art.hists}
    live = session.registry.get_histogram("span.e2e_ns")
    assert by_name["span.e2e_ns"]["count"] == live.count
    assert by_name["span.e2e_ns"]["sum"] == live.sum


def test_kernel_calendar_gauges_sampled(session):
    """The standard telemetry run samples the event-calendar kernel counters."""
    series = session.sampler.series
    for name in ("kernel.events_executed", "kernel.pending", "kernel.batches",
                 "kernel.batched_events", "kernel.cascades",
                 "kernel.l0_inserts", "kernel.overflow_inserts",
                 "kernel.timeout_allocs", "kernel.timeout_reuses"):
        assert name in series, name
    executed = series["kernel.events_executed"].values()
    assert executed == sorted(executed)  # cumulative counter, monotone
    assert executed[-1] > 0
    rate = series["kernel.timeout_freelist_hit_rate"].values()[-1]
    assert 0.0 <= rate <= 1.0


def test_schema_validation_catches_drift():
    assert validate_records([{"type": "meta", "schema": SCHEMA_VERSION,
                              "end_ns": 1, "run": {}}]) == []
    errs = validate_records([
        {"type": "meta", "schema": SCHEMA_VERSION + 1, "end_ns": 1, "run": {}},
        {"type": "series", "name": "x"},          # missing points
        {"type": "wat"},                          # unknown type
    ])
    assert len(errs) == 3
    assert validate_records([]) == ["no meta record"]


def test_load_rejects_bad_artifacts():
    with pytest.raises(ValueError, match="not valid JSON"):
        load_jsonl(io.StringIO("{nope\n"))
    bad = json.dumps({"type": "meta", "schema": 999, "end_ns": 0, "run": {}})
    with pytest.raises(ValueError, match="schema"):
        load_jsonl(io.StringIO(bad + "\n"))


def test_csv_export_long_form(session):
    buf = io.StringIO()
    rows = write_csv(buf, session)
    lines = buf.getvalue().strip().splitlines()
    assert lines[0] == "name,t_ns,value"
    assert len(lines) == rows + 1
    assert rows == sum(len(ts) for ts in session.sampler.series.values())


def test_prometheus_exposition(session):
    buf = io.StringIO()
    write_prometheus(buf, session)
    text = buf.getvalue()
    assert "# TYPE repro_client_app_cpu_busy_ns gauge" in text
    assert "# TYPE repro_span_e2e_ns histogram" in text
    assert 'repro_span_e2e_ns_bucket{name="span.e2e_ns",le="+Inf"}' in text
    # bucket counts are cumulative
    hist = session.registry.get_histogram("span.e2e_ns")
    assert f'repro_span_e2e_ns_count{{name="span.e2e_ns"}} {hist.count}' in text


_PROM_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^{}]*)\})?"
    r" (?P<value>[-+]?(?:[0-9]*\.?[0-9]+(?:[eE][-+]?[0-9]+)?|Inf|NaN))$")
_PROM_LABEL = re.compile(r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\\n]|\\[\\"n])*"$')


def test_prometheus_grammar_valid(session):
    """Every exposed line must parse under the text exposition grammar:
    metric names ``[a-zA-Z_:][a-zA-Z0-9_:]*``, label values escaped."""
    buf = io.StringIO()
    write_prometheus(buf, session)
    for line in buf.getvalue().splitlines():
        if line.startswith("#"):
            continue
        m = _PROM_LINE.match(line)
        assert m, f"line fails exposition grammar: {line!r}"
        if m.group("labels"):
            for pair in m.group("labels").split(","):
                assert _PROM_LABEL.match(pair), f"bad label {pair!r} in {line!r}"


def test_prometheus_dotted_names_keep_identity(session):
    """Sanitizing ``conn1.client.tx.ring_free`` → ``_`` is lossy, so the
    original dotted name must survive as a ``name`` label."""
    buf = io.StringIO()
    write_prometheus(buf, session)
    text = buf.getvalue()
    dotted = [n for n in session.registry.snapshot() if "." in n]
    assert dotted, "expected dotted per-connection metric names"
    for name in dotted:
        assert f'name="{name}"' in text, name


def test_prometheus_escaping():
    from repro.obs.export import _prom_escape, _prom_name

    assert _prom_name("conn1.client.tx") == "repro_conn1_client_tx"
    assert _prom_name("0weird-name") == "repro_0weird_name"
    assert _prom_escape('a"b\\c\nd') == 'a\\"b\\\\c\\nd'


def test_report_renders_from_live_and_loaded(session):
    live = render_report(session)
    buf = io.StringIO()
    write_jsonl(buf, session)
    buf.seek(0)
    loaded = render_report(load_jsonl(buf))
    assert live == loaded
    for needle in ("telemetry run report", "connection summary",
                   "slowest spans", "latency histograms"):
        assert needle in live
    # the bogus conns.opened counter must not appear as a connection row
    assert "conns@opened" not in live


def test_report_markdown_flavour(session):
    md = render_report(session, fmt="markdown")
    assert md.startswith("# Telemetry run report")
    assert "## Connection summary" in md
    assert "|---|" in md
    with pytest.raises(ValueError):
        render_report(session, fmt="html")


def test_cli_smoke_gate(tmp_path, capsys):
    out = tmp_path / "smoke.jsonl"
    assert obs_main(["smoke", "--out", str(out)]) == 0
    assert "obs smoke ok" in capsys.readouterr().out
    with out.open() as fh:
        art = load_jsonl(fh)
    assert art.spans and all(s.complete for s in art.spans)


def test_cli_run_and_report_round_trip(tmp_path, capsys):
    art_path = tmp_path / "run.jsonl"
    assert obs_main(["run", "--scenario", "blast", "--messages", "12",
                     "--out", str(art_path)]) == 0
    first = capsys.readouterr().out
    assert "telemetry run report" in first
    assert obs_main(["report", str(art_path)]) == 0
    second = capsys.readouterr().out
    assert second == first
