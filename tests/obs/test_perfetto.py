"""Chrome trace-event export: a valid document from real runs, and a
validator strict enough to catch each malformation class it claims."""

import io
import json

import pytest

from repro.apps import BlastConfig, ExponentialSizes, run_blast
from repro.config import ScenarioConfig
from repro.obs.perfetto import (
    build_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.simnet import HEAVY_LOSS
from repro.testbed import Testbed


@pytest.fixture(scope="module")
def lossy_doc():
    scenario = ScenarioConfig(seed=1, faults=HEAVY_LOSS, causal_capture=True,
                              max_events=400_000_000)
    tb = Testbed.from_scenario(scenario)
    tel = tb.attach_telemetry()
    run_blast(BlastConfig(total_messages=30, sizes=ExponentialSizes(seed=1)),
              testbed=tb, scenario=scenario)
    tel.finish()
    return build_chrome_trace(tel.tracer.events, tel.spans())


def test_real_run_export_is_valid(lossy_doc):
    assert validate_chrome_trace(lossy_doc) == []


def test_export_structure(lossy_doc):
    evs = lossy_doc["traceEvents"]
    by_ph = {}
    for e in evs:
        by_ph.setdefault(e["ph"], []).append(e)
    # host process tracks + per-connection thread tracks
    names = {e["args"]["name"] for e in by_ph["M"] if e["name"] == "process_name"}
    assert {"client", "server"} <= names
    # one complete event per delivered message
    assert len(by_ph["X"]) == 30
    # flow arrows come in matched pairs crossing processes
    assert len(by_ph["s"]) == len(by_ph["f"]) == 30
    starts = {e["id"]: e for e in by_ph["s"]}
    for f in by_ph["f"]:
        s = starts[f["id"]]
        assert s["pid"] != f["pid"], "flow must cross host tracks"
        assert s["ts"] <= f["ts"]
    # the lossy run surfaces reliability instants
    instant_names = {e["name"] for e in by_ph["i"]}
    assert "retransmit" in instant_names or "nak" in instant_names


def test_write_round_trips(lossy_doc, tmp_path):
    buf = io.StringIO()
    n = write_chrome_trace(buf, lossy_doc)
    assert n == len(lossy_doc["traceEvents"])
    loaded = json.loads(buf.getvalue())
    assert validate_chrome_trace(loaded) == []


# ----------------------------------------------------------------------
# validator strictness
# ----------------------------------------------------------------------
def _doc(*events):
    return {"traceEvents": list(events)}


M = {"name": "process_name", "ph": "M", "pid": 1, "args": {"name": "client"}}


def test_validator_rejects_non_document():
    assert validate_chrome_trace([]) != []
    assert validate_chrome_trace({"events": []}) != []


def test_validator_rejects_missing_fields():
    errs = validate_chrome_trace(_doc(M, {"ph": "X", "name": "m", "ts": 1}))
    assert any("missing fields" in e for e in errs)


def test_validator_rejects_unknown_ph():
    errs = validate_chrome_trace(_doc(M, {"ph": "Z", "name": "m"}))
    assert any("unknown/missing ph" in e for e in errs)


def test_validator_rejects_negative_ts_and_dur():
    x = {"name": "m", "cat": "c", "ph": "X", "ts": -1, "dur": 2, "pid": 1, "tid": 0}
    assert any("bad ts" in e for e in validate_chrome_trace(_doc(M, x)))
    x2 = dict(x, ts=1, dur=-2)
    assert any("bad dur" in e for e in validate_chrome_trace(_doc(M, x2)))


def test_validator_rejects_nonmonotone_track():
    a = {"name": "m", "cat": "c", "ph": "X", "ts": 10, "dur": 1, "pid": 1, "tid": 0}
    b = dict(a, ts=5)
    errs = validate_chrome_trace(_doc(M, a, b))
    assert any("on track" in e for e in errs)
    # different track: no violation
    c = dict(a, ts=5, tid=1)
    assert validate_chrome_trace(_doc(M, a, c)) == []


def test_validator_rejects_unmatched_flow():
    s = {"name": "m", "cat": "flow", "ph": "s", "id": "1:1", "ts": 1,
         "pid": 1, "tid": 0}
    errs = validate_chrome_trace(_doc(M, s))
    assert any("unmatched" in e for e in errs)


def test_validator_rejects_flow_end_without_bp():
    s = {"name": "m", "cat": "flow", "ph": "s", "id": "1:1", "ts": 1,
         "pid": 1, "tid": 0}
    f = {"name": "m", "cat": "flow", "ph": "f", "id": "1:1", "ts": 2,
         "pid": 1, "tid": 1}
    errs = validate_chrome_trace(_doc(M, s, f))
    assert any("bp='e'" in e for e in errs)
    assert validate_chrome_trace(_doc(M, s, dict(f, bp="e"))) == []


def test_validator_rejects_flow_finishing_before_start():
    s = {"name": "m", "cat": "flow", "ph": "s", "id": "x", "ts": 9,
         "pid": 1, "tid": 0}
    f = {"name": "m", "cat": "flow", "ph": "f", "bp": "e", "id": "x", "ts": 2,
         "pid": 2, "tid": 0}
    errs = validate_chrome_trace(_doc(M, f, s))
    assert any("start ts after finish" in e for e in errs)


def test_validator_rejects_bad_instant_scope():
    i = {"name": "m", "ph": "i", "ts": 1, "pid": 1, "tid": 0, "s": "q"}
    errs = validate_chrome_trace(_doc(M, i))
    assert any("instant scope" in e for e in errs)
    assert validate_chrome_trace(_doc(M, dict(i, s="t"))) == []


def test_validator_rejects_bad_metadata():
    bad = {"name": "color_name", "ph": "M", "pid": 1, "args": {"name": "x"}}
    assert any("unknown metadata" in e for e in validate_chrome_trace(_doc(bad)))
    no_name = {"name": "process_name", "ph": "M", "pid": 1, "args": {}}
    assert any("lack 'name'" in e for e in validate_chrome_trace(_doc(no_name)))
