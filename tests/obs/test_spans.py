"""Span stitching: synthetic event streams and full simulated runs."""

from repro.apps import BlastConfig, ExponentialSizes, FixedSizes, run_blast
from repro.core import ProtocolMode
from repro.obs import build_spans
from repro.testbed import Testbed
from repro.trace import TraceEvent


def ev(t, conn, host, kind, **fields):
    return TraceEvent(t, conn, host, kind, tuple(sorted(fields.items())))


def synthetic_events():
    """Two messages client->server: one direct, one indirect (copied)."""
    return [
        ev(0, 1, "client", "conn_open", peer=2),
        ev(0, 2, "server", "conn_open", peer=1),
        # message 1: 100 bytes, direct
        ev(10, 1, "client", "send", send_id=1, nbytes=100),
        ev(20, 1, "client", "direct", nbytes=100, seq=0),
        ev(30, 1, "client", "send_done", send_id=1, nbytes=100),
        ev(40, 2, "server", "deliver", nbytes=100),
        # message 2: 50 bytes, indirect with a receiver copy
        ev(50, 1, "client", "send", send_id=2, nbytes=50),
        ev(55, 1, "client", "indirect", nbytes=50, seq=100),
        ev(60, 2, "server", "copy", nbytes=50, seq=100),
        ev(65, 1, "client", "send_done", send_id=2, nbytes=50),
        ev(70, 2, "server", "deliver", nbytes=50),
    ]


def test_synthetic_stitching():
    spans = build_spans(synthetic_events())
    assert len(spans) == 2
    first, second = spans

    assert (first.seq_start, first.seq_end) == (0, 100)
    assert first.kind == "direct"
    assert first.complete
    assert first.submit_ns == 10
    assert first.first_post_ns == 20
    assert first.acked_ns == 30
    assert first.delivered_ns == 40
    assert first.queue_ns == 10
    assert first.transport_ns == 10
    assert first.delivery_ns == 20
    assert first.e2e_ns == 30
    assert first.copies == 0

    assert (second.seq_start, second.seq_end) == (100, 150)
    assert second.kind == "indirect"
    assert second.complete
    assert second.copies == 1
    assert second.copied_bytes == 50


def test_transfer_split_across_messages_attributes_by_seq():
    events = [
        ev(0, 1, "client", "conn_open", peer=2),
        ev(0, 2, "server", "conn_open", peer=1),
        ev(10, 1, "client", "send", send_id=1, nbytes=100),
        ev(11, 1, "client", "send", send_id=2, nbytes=100),
        # the two plans land inside different messages
        ev(20, 1, "client", "indirect", nbytes=100, seq=0),
        ev(21, 1, "client", "indirect", nbytes=100, seq=100),
        # one copy covers both messages' bytes
        ev(30, 2, "server", "copy", nbytes=200, seq=0),
    ]
    spans = build_spans(events)
    assert [s.indirect_bytes for s in spans] == [100, 100]
    assert [s.copies for s in spans] == [1, 1]
    assert [s.copied_bytes for s in spans] == [100, 100]


def test_zero_byte_message_span_is_complete_once_acked():
    events = [
        ev(0, 1, "client", "conn_open", peer=2),
        ev(10, 1, "client", "send", send_id=1, nbytes=0),
        ev(20, 1, "client", "send_done", send_id=1, nbytes=0),
    ]
    (span,) = build_spans(events)
    assert span.nbytes == 0
    assert span.complete
    assert span.delivered_ns == 20


def test_connections_without_sends_produce_no_spans():
    events = [ev(0, 2, "server", "conn_open", peer=1),
              ev(5, 2, "server", "deliver", nbytes=10)]
    assert build_spans(events) == []


def run_with_telemetry(cfg, seed=2):
    tb = Testbed(seed=seed)
    tel = tb.attach_telemetry()
    run_blast(cfg, testbed=tb, seed=seed, max_events=50_000_000)
    tel.finish()
    return tel


def test_every_sent_message_has_a_complete_span():
    """The acceptance criterion: full span coverage of a real run."""
    cfg = BlastConfig(total_messages=50, sizes=ExponentialSizes(seed=2))
    tel = run_with_telemetry(cfg)
    spans = tel.spans()
    assert len(spans) == 50
    assert all(s.complete for s in spans)
    # stream ranges tile the byte stream with no gaps
    assert spans[0].seq_start == 0
    for prev, cur in zip(spans, spans[1:]):
        assert cur.seq_start == prev.seq_end
    # stage latencies are well-formed
    for s in spans:
        assert s.queue_ns >= 0
        assert s.transport_ns > 0
        assert s.e2e_ns >= s.delivery_ns > 0


def test_span_byte_accounting_matches_protocol_stats():
    cfg = BlastConfig(total_messages=40, sizes=FixedSizes(1 << 20),
                      outstanding_sends=4, outstanding_recvs=4,
                      recv_buffer_bytes=1 << 20)
    tel = run_with_telemetry(cfg)
    spans = tel.spans()
    conn = next(c for c in tel._conns if c.host.name == "client")
    assert sum(s.direct_bytes for s in spans) == conn.tx_stats.direct_bytes
    assert sum(s.indirect_bytes for s in spans) == conn.tx_stats.indirect_bytes
    assert sum(s.copied_bytes for s in spans) == conn.tx_stats.indirect_bytes


def test_direct_only_spans_have_no_copies():
    cfg = BlastConfig(total_messages=20, sizes=FixedSizes(64 * 1024),
                      mode=ProtocolMode.DIRECT_ONLY)
    tel = run_with_telemetry(cfg)
    spans = tel.spans()
    assert len(spans) == 20
    assert all(s.kind == "direct" for s in spans)
    assert sum(s.copies for s in spans) == 0
