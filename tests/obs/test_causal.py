"""Critical-path attribution: exact reconciliation, named segments.

The load-bearing property is *telescoping exactness*: chain nodes satisfy
``child.sched_ns == parent.fire_ns``, so the per-message segment sums must
equal the span's ``e2e_ns`` to the nanosecond — not approximately.  The
lossy-run test is the ISSUE acceptance criterion: a seeded heavy-loss
blast must attribute nonzero latency to ``retransmit_backoff``.
"""

import pytest

from repro.apps import BlastConfig, ExponentialSizes, run_blast
from repro.config import ScenarioConfig
from repro.obs.causal import (
    SEGMENTS,
    _relabel_credit,
    critical_paths,
    flight_chain,
)
from repro.simnet import HEAVY_LOSS
from repro.testbed import Testbed


def _traced_blast(seed, messages, faults=None):
    scenario = ScenarioConfig(
        seed=seed, faults=faults, causal_capture=True, max_events=400_000_000)
    tb = Testbed.from_scenario(scenario)
    tel = tb.attach_telemetry()
    run_blast(BlastConfig(total_messages=messages,
                          sizes=ExponentialSizes(seed=seed)),
              testbed=tb, scenario=scenario)
    tel.finish()
    return tb, tel


@pytest.fixture(scope="module")
def lossy_run():
    return _traced_blast(seed=1, messages=40, faults=HEAVY_LOSS)


@pytest.fixture(scope="module")
def clean_run():
    return _traced_blast(seed=3, messages=20)


def test_every_message_reconciles_exactly(lossy_run):
    tb, tel = lossy_run
    report = critical_paths(tb.causal, tel.tracer.events, tel.spans())
    assert report.unattributed == 0
    assert len(report.paths) == 40
    for path in report.paths:
        assert path.total_ns == path.span.e2e_ns, (
            f"send_id={path.span.send_id}: segments sum {path.total_ns} "
            f"!= e2e {path.span.e2e_ns}")
        assert path.depth > 0


def test_lossy_run_attributes_retransmit_backoff(lossy_run):
    tb, tel = lossy_run
    report = critical_paths(tb.causal, tel.tracer.events, tel.spans())
    assert report.totals.get("retransmit_backoff", 0) > 0
    # and the physical segments are present too
    assert report.totals["cpu"] > 0
    assert report.totals["link_serialization"] > 0
    assert report.totals["propagation"] > 0
    assert set(report.totals) <= set(SEGMENTS)


def test_intervals_tile_the_span(lossy_run):
    """The labeled intervals partition [submit, delivered]: sorted, gap-free."""
    tb, tel = lossy_run
    report = critical_paths(tb.causal, tel.tracer.events, tel.spans())
    for path in report.paths[:10]:
        ivs = sorted(path.intervals)
        assert ivs[0][0] == path.span.submit_ns
        assert ivs[-1][1] == path.span.delivered_ns
        for (s0, e0, _), (s1, e1, _) in zip(ivs, ivs[1:]):
            assert e0 == s1, "intervals must tile without gaps or overlaps"


def test_clean_run_reconciles_and_has_no_backoff(clean_run):
    tb, tel = clean_run
    report = critical_paths(tb.causal, tel.tracer.events, tel.spans())
    assert report.unattributed == 0
    assert all(p.total_ns == p.span.e2e_ns for p in report.paths)
    assert report.totals.get("retransmit_backoff", 0) == 0


def test_report_render_and_dict(lossy_run):
    tb, tel = lossy_run
    report = critical_paths(tb.causal, tel.tracer.events, tel.spans())
    text = report.render()
    assert "retransmit_backoff" in text
    assert "critical-path attribution (40 messages)" in text
    d = report.to_dict()
    assert d["messages"] == 40
    assert sum(d["totals"].values()) == report.total_ns


# ----------------------------------------------------------------------
# credit relabeling (unit level: totals preserved, only queueing moves)
# ----------------------------------------------------------------------
def test_relabel_credit_splits_overlap():
    intervals = [(0, 100, "queueing"), (100, 150, "cpu")]
    out = _relabel_credit(intervals, [(20, 60)])
    assert out == [
        (0, 20, "queueing"), (20, 60, "credit_wait"), (60, 100, "queueing"),
        (100, 150, "cpu"),
    ]
    assert sum(e - s for s, e, _ in out) == 150


def test_relabel_credit_ignores_non_queueing():
    intervals = [(0, 50, "propagation")]
    assert _relabel_credit(intervals, [(0, 50)]) == intervals


def test_relabel_credit_multiple_windows():
    out = _relabel_credit([(0, 100, "queueing")], [(10, 20), (30, 40)])
    assert out == [
        (0, 10, "queueing"), (10, 20, "credit_wait"),
        (20, 30, "queueing"), (30, 40, "credit_wait"),
        (40, 100, "queueing"),
    ]


# ----------------------------------------------------------------------
# flight-chain reconstruction from a dump dict
# ----------------------------------------------------------------------
def test_flight_chain_walks_parents():
    dump = {"events": [
        {"id": 1, "parent": -1, "category": "link"},
        {"id": 2, "parent": 1, "category": "rto_timer"},
        {"id": 3, "parent": 2, "category": "failure"},
    ]}
    chain = flight_chain(dump)
    assert [n["id"] for n in chain] == [3, 2, 1]


def test_flight_chain_handles_truncated_ring():
    dump = {"events": [{"id": 9, "parent": 4, "category": "failure"}]}
    assert [n["id"] for n in flight_chain(dump)] == [9]
    assert flight_chain({"events": []}) == []
