"""Telemetry over a multi-host fabric: switch-port and SRQ gauges."""

from repro.apps.incast import (
    IncastConfig,
    _receiver_proc,
    _sender_proc,
    incast_topology,
)
from repro.config import ScenarioConfig
from repro.exs import ExsSocketOptions
from repro.fabric import Fabric
from repro.obs.report import render_report


def _observed_incast(**scenario_kw):
    cfg = IncastConfig(senders=3, bytes_per_sender=32 * 1024,
                       message_bytes=8 * 1024)
    sc = ScenarioConfig(topology=incast_topology(cfg), **scenario_kw)
    fab = Fabric.from_scenario(sc)
    tel = fab.attach_telemetry()
    finish = {}
    for i, name in enumerate(cfg.sender_names):
        handle = fab.connect(name, cfg.sink, options=ExsSocketOptions())
        fab.sim.process(_sender_proc(handle, cfg), name=f"snd{i}")
        fab.sim.process(_receiver_proc(handle, cfg, finish, i), name=f"rcv{i}")
    fab.run()
    tel.finish()
    return cfg, fab, tel


def test_fabric_attach_registers_port_and_edge_gauges():
    cfg, fab, tel = _observed_incast(seed=1)
    snap = tel.registry.snapshot()
    # per-edge link gauges (no flat legacy names on a switched fabric)
    assert "link.s0-switch0.dir0.wire_bytes" in snap
    assert "link.dir0.wire_bytes" not in snap
    # per-port switch gauges carry real traffic accounting
    assert snap["fabric.port.switch0.sink.forwarded_bytes"] >= cfg.senders * cfg.bytes_per_sender
    assert snap["fabric.port.switch0.sink.drops"] == 0
    assert snap["fabric.port.switch0.sink.peak_queue_bytes"] > 0
    # per-host CPU gauges exist for every fabric host
    for host in fab.host_names:
        assert f"{host}.cpu.busy_ns" in snap


def test_fabric_attach_registers_srq_gauges_when_pooled():
    cfg, fab, tel = _observed_incast(seed=1, srq_depth=64, cq_shards=2)
    snap = tel.registry.snapshot()
    assert snap["srq.sink.attached"] == cfg.senders
    assert snap["srq.sink.occupancy"] <= 64
    assert snap["srq.sink.min_free"] <= 64
    assert snap["srq.sink.empty_hits"] == 0


def test_unpooled_fabric_has_no_srq_gauges():
    cfg, fab, tel = _observed_incast(seed=1)
    assert not any(k.startswith("srq.") for k in tel.registry.snapshot())


def test_report_renders_switch_and_srq_sections():
    cfg, fab, tel = _observed_incast(seed=1, srq_depth=64)
    text = render_report(tel)
    assert "switch ports:" in text
    assert "switch0:sink" in text
    assert "srq pools:" in text
    markdown = render_report(tel, fmt="markdown")
    assert "## Switch ports" in markdown
    assert "## SRQ pools" in markdown


def test_legacy_two_host_gauge_names_unchanged():
    from repro.testbed import Testbed

    tb = Testbed.from_scenario(ScenarioConfig(seed=1))
    tel = tb.attach_telemetry()
    tb.run(until=100_000)
    snap = tel.registry.snapshot()
    assert "link.dir0.wire_bytes" in snap
    assert "link.dir1.busy_ns" in snap
    assert not any(k.startswith("fabric.port.") for k in snap)
