"""Sampler: periodic snapshots on the simulated clock, bounded, terminating."""

import pytest

from repro.obs import MetricsRegistry, Sampler, TimeSeries
from repro.simnet import Timeout


def ticking_sim(sim, until_ns, step_ns=100):
    """Keep the calendar non-empty until `until_ns` with no-op timeouts."""
    for t in range(step_ns, until_ns + 1, step_ns):
        Timeout(sim, t)


def test_samples_at_interval(sim):
    reg = MetricsRegistry()
    reg.gauge("clock", lambda: sim.now)
    sampler = Sampler(sim, reg, interval_ns=1000)
    sampler.start()
    ticking_sim(sim, 5000)
    sim.run()
    ts = sampler.get("clock")
    assert ts.times() == [1000, 2000, 3000, 4000, 5000]
    assert ts.values() == [1000.0, 2000.0, 3000.0, 4000.0, 5000.0]


def test_sampler_stops_when_calendar_drains(sim):
    """A standing tick must not keep run(until=None) alive forever."""
    reg = MetricsRegistry()
    sampler = Sampler(sim, reg, interval_ns=10)
    sampler.start()
    Timeout(sim, 35)
    sim.run()  # would hang (or hit max_events) if the sampler kept rescheduling
    assert sim.now <= 45
    assert sampler.samples_taken >= 3


def test_max_samples_truncates_and_reports(sim):
    reg = MetricsRegistry()
    reg.gauge("g", lambda: 0)
    sampler = Sampler(sim, reg, interval_ns=10, max_samples=3)
    sampler.start()
    ticking_sim(sim, 1000, step_ns=10)
    sim.run()
    assert sampler.samples_taken == 3
    assert sampler.truncated is True
    assert len(sampler.get("g")) == 3


def test_start_is_idempotent(sim):
    reg = MetricsRegistry()
    reg.gauge("g", lambda: 1)
    sampler = Sampler(sim, reg, interval_ns=100)
    ticking_sim(sim, 100)
    sampler.start()
    sampler.start()
    sim.run()
    # one tick, not two
    assert len(sampler.get("g")) == 1


def test_interval_must_be_positive(sim):
    with pytest.raises(ValueError):
        Sampler(sim, MetricsRegistry(), interval_ns=0)


def test_series_deltas():
    ts = TimeSeries("t", [(10, 2.0), (20, 5.0), (30, 5.0)])
    assert ts.deltas() == [(10, 2.0), (20, 3.0), (30, 0.0)]
    assert ts.last() == 5.0
    assert TimeSeries("empty").last() is None


def test_series_deltas_clamps_counter_resets():
    """A mid-run counter reset (reconnect, re-registered gauge) must not
    produce a huge negative rate spike."""
    ts = TimeSeries("t", [(10, 5.0), (20, 8.0), (30, 2.0), (40, 6.0)])
    assert ts.deltas() == [(10, 5.0), (20, 3.0), (30, 0.0), (40, 4.0)]
    # genuinely signed series can opt out
    assert ts.deltas(allow_negative=True) == [
        (10, 5.0), (20, 3.0), (30, -6.0), (40, 4.0)]


def test_finish_flushes_final_sample(sim):
    """The tick stream stops at the last interval multiple; finish() must
    extend every series to the actual end-of-run time."""
    reg = MetricsRegistry()
    reg.gauge("clock", lambda: sim.now)
    sampler = Sampler(sim, reg, interval_ns=1000)
    sampler.start()
    ticking_sim(sim, 5000)
    sim.run(3500)  # run ends at 3500, between ticks
    assert sampler.get("clock").times()[-1] == 3000
    sampler.finish()
    assert sampler.get("clock").times()[-1] == sim.now == 3500
    assert sampler.last_sample_ns == 3500


def test_finish_is_idempotent_at_an_instant(sim):
    reg = MetricsRegistry()
    reg.gauge("g", lambda: 1)
    sampler = Sampler(sim, reg, interval_ns=1000)
    sampler.start()
    ticking_sim(sim, 1000)
    sim.run()
    n = len(sampler.get("g"))
    sampler.finish()
    sampler.finish()
    # the tick already sampled at t=1000; finish adds nothing new
    assert len(sampler.get("g")) == n


def test_telemetry_finish_reaches_end_of_run():
    """Via the Testbed/run_blast teardown: the last sample time must equal
    the end-of-run time even when the run ends between ticks."""
    from repro.apps import BlastConfig, FixedSizes, run_blast
    from repro.config import ScenarioConfig
    from repro.testbed import Testbed

    scenario = ScenarioConfig(seed=2)
    tb = Testbed.from_scenario(scenario)
    tel = tb.attach_telemetry(sample_interval_ns=1_000_000)
    run_blast(BlastConfig(total_messages=5, sizes=FixedSizes(64_000)),
              testbed=tb, scenario=scenario)
    tel.finish()
    for name in tel.sampler.names():
        assert tel.sampler.series[name].times()[-1] == tb.sim.now
