"""Sampler: periodic snapshots on the simulated clock, bounded, terminating."""

import pytest

from repro.obs import MetricsRegistry, Sampler, TimeSeries
from repro.simnet import Timeout


def ticking_sim(sim, until_ns, step_ns=100):
    """Keep the calendar non-empty until `until_ns` with no-op timeouts."""
    for t in range(step_ns, until_ns + 1, step_ns):
        Timeout(sim, t)


def test_samples_at_interval(sim):
    reg = MetricsRegistry()
    reg.gauge("clock", lambda: sim.now)
    sampler = Sampler(sim, reg, interval_ns=1000)
    sampler.start()
    ticking_sim(sim, 5000)
    sim.run()
    ts = sampler.get("clock")
    assert ts.times() == [1000, 2000, 3000, 4000, 5000]
    assert ts.values() == [1000.0, 2000.0, 3000.0, 4000.0, 5000.0]


def test_sampler_stops_when_calendar_drains(sim):
    """A standing tick must not keep run(until=None) alive forever."""
    reg = MetricsRegistry()
    sampler = Sampler(sim, reg, interval_ns=10)
    sampler.start()
    Timeout(sim, 35)
    sim.run()  # would hang (or hit max_events) if the sampler kept rescheduling
    assert sim.now <= 45
    assert sampler.samples_taken >= 3


def test_max_samples_truncates_and_reports(sim):
    reg = MetricsRegistry()
    reg.gauge("g", lambda: 0)
    sampler = Sampler(sim, reg, interval_ns=10, max_samples=3)
    sampler.start()
    ticking_sim(sim, 1000, step_ns=10)
    sim.run()
    assert sampler.samples_taken == 3
    assert sampler.truncated is True
    assert len(sampler.get("g")) == 3


def test_start_is_idempotent(sim):
    reg = MetricsRegistry()
    reg.gauge("g", lambda: 1)
    sampler = Sampler(sim, reg, interval_ns=100)
    ticking_sim(sim, 100)
    sampler.start()
    sampler.start()
    sim.run()
    # one tick, not two
    assert len(sampler.get("g")) == 1


def test_interval_must_be_positive(sim):
    with pytest.raises(ValueError):
        Sampler(sim, MetricsRegistry(), interval_ns=0)


def test_series_deltas():
    ts = TimeSeries("t", [(10, 2.0), (20, 5.0), (30, 5.0)])
    assert ts.deltas() == [(10, 2.0), (20, 3.0), (30, 0.0)]
    assert ts.last() == 5.0
    assert TimeSeries("empty").last() is None
