"""Telemetry observes, never perturbs: results are bit-identical either way."""

import os

from repro.apps import BlastConfig, ExponentialSizes, run_blast
from repro.bench.experiment import SMOKE, run_grid
from repro.obs import load_jsonl
from repro.testbed import Testbed


def fingerprint(result):
    return (
        result.total_bytes, result.start_ns, result.end_ns,
        result.throughput_bps, result.sender_cpu, result.receiver_cpu,
        result.tx_stats.direct_transfers, result.tx_stats.indirect_transfers,
        result.tx_stats.direct_bytes, result.tx_stats.indirect_bytes,
        result.tx_stats.mode_switches, result.rx_stats.copies,
        tuple(result.send_latencies_ns),
    )


def test_results_identical_with_telemetry_on_and_off():
    cfg = BlastConfig(total_messages=120, sizes=ExponentialSizes(seed=6))
    plain = run_blast(cfg, seed=6)
    observed = run_blast(cfg, seed=6, telemetry=True)
    assert fingerprint(plain) == fingerprint(observed)


def test_sampling_interval_does_not_change_results():
    cfg = BlastConfig(total_messages=60, sizes=ExponentialSizes(seed=9))
    runs = []
    for interval in (10_000, 1_000_000):
        tb = Testbed(seed=9)
        tb.attach_telemetry(sample_interval_ns=interval)
        runs.append(run_blast(cfg, testbed=tb, seed=9))
    assert fingerprint(runs[0]) == fingerprint(runs[1])


def test_telemetry_attach_is_reported_on_testbed():
    tb = Testbed(seed=1)
    assert tb.telemetry is None
    tel = tb.attach_telemetry()
    assert tb.telemetry is tel
    assert tb.client_host.telemetry is tel
    assert tb.server_host.telemetry is tel
    assert tb.client_host.tracer is tel.tracer


def test_finish_is_idempotent():
    cfg = BlastConfig(total_messages=20, sizes=ExponentialSizes(seed=3))
    tb = Testbed(seed=3)
    tel = tb.attach_telemetry()
    run_blast(cfg, testbed=tb, seed=3)
    spans = tel.finish(scenario="x")
    again = tel.finish()
    assert again is spans
    # stage histograms were not double-observed
    assert tel.registry.get_histogram("span.e2e_ns").count == len(spans)


def test_env_var_emits_artifacts_from_sweep_workers(tmp_path):
    cfg = BlastConfig(total_messages=40, sizes=ExponentialSizes(seed=1))
    run_grid([cfg], quality=SMOKE, processes=2, telemetry_dir=str(tmp_path))
    files = sorted(tmp_path.glob("*.jsonl"))
    assert len(files) == len(SMOKE.seeds)
    for f in files:
        with f.open() as fh:
            art = load_jsonl(fh)
        assert art.meta["scenario"] == "blast"
        assert art.spans and all(s.complete for s in art.spans)
    assert "REPRO_TELEMETRY_DIR" not in os.environ
