"""Metrics registry: counters, gauges, histograms, collectors."""

import pytest

from repro.obs import Counter, Gauge, Histogram, MetricsRegistry


def test_counter_increments():
    reg = MetricsRegistry()
    c = reg.counter("sends", "sends submitted")
    c.inc()
    c.inc(4)
    assert c.value == 5
    assert reg.snapshot()["sends"] == 5


def test_counter_registration_is_idempotent():
    reg = MetricsRegistry()
    a = reg.counter("x")
    b = reg.counter("x")
    assert a is b
    assert len(reg) == 1


def test_gauge_reads_live_state():
    state = {"v": 1}
    reg = MetricsRegistry()
    reg.gauge("depth", lambda: state["v"])
    assert reg.snapshot()["depth"] == 1
    state["v"] = 42
    assert reg.snapshot()["depth"] == 42


def test_name_collision_across_kinds_rejected():
    reg = MetricsRegistry()
    reg.counter("m")
    with pytest.raises(ValueError):
        reg.gauge("m", lambda: 0)
    with pytest.raises(ValueError):
        reg.histogram("m")


def test_collector_merged_into_snapshot():
    reg = MetricsRegistry()
    conns = []
    reg.add_collector(lambda: {f"conn{i}.depth": d for i, d in enumerate(conns)})
    assert "conn0.depth" not in reg.snapshot()
    conns.append(7)  # object appears mid-run
    assert reg.snapshot()["conn0.depth"] == 7


def test_histogram_log2_bucketing():
    h = Histogram("lat")
    for v in (0, 1, 2, 3, 4, 1000):
        h.observe(v)
    assert h.count == 6
    assert h.sum == 1010
    buckets = dict(h.nonzero_buckets())
    assert buckets[0] == 1        # the exact zero
    assert buckets[1] == 1        # value 1
    assert buckets[3] == 2        # values 2, 3
    assert buckets[7] == 1        # value 4
    assert buckets[1023] == 1     # value 1000
    assert h.mean == pytest.approx(1010 / 6)


def test_histogram_rejects_negative():
    h = Histogram("lat")
    with pytest.raises(ValueError):
        h.observe(-1)


def test_histogram_quantile_upper_bounds():
    h = Histogram("lat")
    for _ in range(99):
        h.observe(10)        # bucket ub 15
    h.observe(100_000)       # bucket ub 131071
    assert h.quantile(0.5) == 15
    assert h.quantile(1.0) == 131071
    assert Histogram("empty").quantile(0.5) == 0
    with pytest.raises(ValueError):
        h.quantile(1.5)


def test_snapshot_excludes_histograms():
    reg = MetricsRegistry()
    reg.histogram("h").observe(3)
    assert "h" not in reg.snapshot()
    assert reg.get_histogram("h").count == 1
