"""Simulated memory: buffers, chunks, arena."""

import pytest

from repro.hosts.memory import Buffer, Chunk, MemoryArena, MemoryError_


@pytest.fixture
def arena():
    return MemoryArena()


def test_alloc_assigns_unique_aligned_addresses(arena):
    a = arena.alloc(100)
    b = arena.alloc(100)
    assert a.addr != b.addr
    assert a.addr % MemoryArena.ALIGN == 0
    assert b.addr >= a.addr + 100


def test_real_buffer_read_write(arena):
    buf = arena.alloc(16)
    buf.write(4, b"abcd")
    assert buf.read(4, 4) == b"abcd"
    assert buf.read(0, 4) == b"\x00" * 4


def test_synthetic_buffer_tracks_length_only(arena):
    buf = arena.alloc(1 << 30, real=False)  # no actual gigabyte allocated
    assert not buf.is_real
    buf.write(0, b"xy")  # no-op, no error
    assert buf.read(0, 2) is None
    assert buf.view(0, 2) is None


def test_bounds_checked(arena):
    buf = arena.alloc(10)
    with pytest.raises(MemoryError_):
        buf.write(8, b"abc")
    with pytest.raises(MemoryError_):
        buf.read(-1, 2)
    with pytest.raises(MemoryError_):
        buf.check_range(0, 11)


def test_view_is_zero_copy(arena):
    buf = arena.alloc(8)
    buf.fill(b"abcdefgh")
    view = buf.view(2, 3)
    assert bytes(view) == b"cde"
    buf.write(2, b"XYZ")
    assert bytes(view) == b"XYZ"  # same storage


def test_write_chunk(arena):
    buf = arena.alloc(10)
    buf.write_chunk(3, Chunk(0, 4, b"data"))
    assert buf.read(3, 4) == b"data"


def test_negative_alloc_rejected(arena):
    with pytest.raises(MemoryError_):
        arena.alloc(-1)


def test_chunk_validation():
    with pytest.raises(MemoryError_):
        Chunk(0, -1)
    with pytest.raises(MemoryError_):
        Chunk(0, 3, b"toolong!")


def test_chunk_split_real():
    c = Chunk(100, 6, b"abcdef")
    head, tail = c.split(2)
    assert (head.stream_offset, head.nbytes, head.data) == (100, 2, b"ab")
    assert (tail.stream_offset, tail.nbytes, tail.data) == (102, 4, b"cdef")


def test_chunk_split_synthetic():
    c = Chunk(50, 10)
    head, tail = c.split(10)
    assert head.nbytes == 10 and tail.nbytes == 0
    assert tail.stream_offset == 60


def test_chunk_split_zero_length_head_real():
    head, tail = Chunk(10, 4, b"abcd").split(0)
    assert (head.stream_offset, head.nbytes, head.data) == (10, 0, b"")
    assert (tail.stream_offset, tail.nbytes, tail.data) == (10, 4, b"abcd")


def test_chunk_split_full_length_real():
    head, tail = Chunk(10, 4, b"abcd").split(4)
    assert (head.stream_offset, head.nbytes, head.data) == (10, 4, b"abcd")
    assert (tail.stream_offset, tail.nbytes, tail.data) == (14, 0, b"")


def test_chunk_split_zero_length_head_synthetic():
    head, tail = Chunk(10, 4).split(0)
    assert (head.stream_offset, head.nbytes, head.data) == (10, 0, None)
    assert (tail.stream_offset, tail.nbytes, tail.data) == (10, 4, None)


def test_chunk_split_synthetic_matches_real_offsets():
    """Both modes must agree on the stream positions of head and tail."""
    for at in (0, 1, 3, 7):
        rh, rt = Chunk(100, 7, b"abcdefg").split(at)
        sh, st = Chunk(100, 7).split(at)
        assert (sh.stream_offset, sh.nbytes) == (rh.stream_offset, rh.nbytes)
        assert (st.stream_offset, st.nbytes) == (rt.stream_offset, rt.nbytes)
        assert rh.end_offset == rt.stream_offset
        assert sh.end_offset == st.stream_offset


def test_chunk_equality_and_hash():
    assert Chunk(0, 4, b"abcd") == Chunk(0, 4, b"abcd")
    assert Chunk(0, 4, b"abcd") != Chunk(0, 4, b"abce")
    assert Chunk(0, 4) != Chunk(1, 4)
    assert hash(Chunk(3, 2, b"xy")) == hash(Chunk(3, 2, b"xy"))
    assert Chunk(0, 1) != object() and not (Chunk(0, 1) == object())


def test_chunk_split_out_of_range():
    with pytest.raises(MemoryError_):
        Chunk(0, 4, b"abcd").split(5)
    with pytest.raises(MemoryError_):
        Chunk(0, 4, b"abcd").split(-1)
    with pytest.raises(MemoryError_):
        Chunk(0, 4).split(-1)


def test_chunk_end_offset():
    assert Chunk(7, 3).end_offset == 10


def test_arena_accounting(arena):
    arena.alloc(100)
    arena.alloc(200, real=False)
    assert arena.allocated_bytes == 300
    assert arena.buffer_count == 2
