"""Simulated memory: buffers, chunks, arena, and the zero-copy plane."""

import pytest

from repro.hosts.memory import (
    Buffer,
    Chunk,
    CopyMeter,
    MemoryArena,
    MemoryError_,
    pin_debug_enabled,
    set_pin_debug,
)


@pytest.fixture
def pin_debug():
    """Enable the view-pinning debug assertions for one test."""
    set_pin_debug(True)
    yield
    set_pin_debug(False)


@pytest.fixture
def arena():
    return MemoryArena()


def test_alloc_assigns_unique_aligned_addresses(arena):
    a = arena.alloc(100)
    b = arena.alloc(100)
    assert a.addr != b.addr
    assert a.addr % MemoryArena.ALIGN == 0
    assert b.addr >= a.addr + 100


def test_real_buffer_read_write(arena):
    buf = arena.alloc(16)
    buf.write(4, b"abcd")
    assert buf.read(4, 4) == b"abcd"
    assert buf.read(0, 4) == b"\x00" * 4


def test_synthetic_buffer_tracks_length_only(arena):
    buf = arena.alloc(1 << 30, real=False)  # no actual gigabyte allocated
    assert not buf.is_real
    buf.write(0, b"xy")  # no-op, no error
    assert buf.read(0, 2) is None
    assert buf.view(0, 2) is None


def test_bounds_checked(arena):
    buf = arena.alloc(10)
    with pytest.raises(MemoryError_):
        buf.write(8, b"abc")
    with pytest.raises(MemoryError_):
        buf.read(-1, 2)
    with pytest.raises(MemoryError_):
        buf.check_range(0, 11)


def test_view_is_zero_copy(arena):
    buf = arena.alloc(8)
    buf.fill(b"abcdefgh")
    view = buf.view(2, 3)
    assert bytes(view) == b"cde"
    buf.write(2, b"XYZ")
    assert bytes(view) == b"XYZ"  # same storage


def test_write_chunk(arena):
    buf = arena.alloc(10)
    buf.write_chunk(3, Chunk(0, 4, b"data"))
    assert buf.read(3, 4) == b"data"


def test_negative_alloc_rejected(arena):
    with pytest.raises(MemoryError_):
        arena.alloc(-1)


def test_chunk_validation():
    with pytest.raises(MemoryError_):
        Chunk(0, -1)
    with pytest.raises(MemoryError_):
        Chunk(0, 3, b"toolong!")


def test_chunk_split_real():
    c = Chunk(100, 6, b"abcdef")
    head, tail = c.split(2)
    assert (head.stream_offset, head.nbytes, head.data) == (100, 2, b"ab")
    assert (tail.stream_offset, tail.nbytes, tail.data) == (102, 4, b"cdef")


def test_chunk_split_synthetic():
    c = Chunk(50, 10)
    head, tail = c.split(10)
    assert head.nbytes == 10 and tail.nbytes == 0
    assert tail.stream_offset == 60


def test_chunk_split_zero_length_head_real():
    head, tail = Chunk(10, 4, b"abcd").split(0)
    assert (head.stream_offset, head.nbytes, head.data) == (10, 0, b"")
    assert (tail.stream_offset, tail.nbytes, tail.data) == (10, 4, b"abcd")


def test_chunk_split_full_length_real():
    head, tail = Chunk(10, 4, b"abcd").split(4)
    assert (head.stream_offset, head.nbytes, head.data) == (10, 4, b"abcd")
    assert (tail.stream_offset, tail.nbytes, tail.data) == (14, 0, b"")


def test_chunk_split_zero_length_head_synthetic():
    head, tail = Chunk(10, 4).split(0)
    assert (head.stream_offset, head.nbytes, head.data) == (10, 0, None)
    assert (tail.stream_offset, tail.nbytes, tail.data) == (10, 4, None)


def test_chunk_split_synthetic_matches_real_offsets():
    """Both modes must agree on the stream positions of head and tail."""
    for at in (0, 1, 3, 7):
        rh, rt = Chunk(100, 7, b"abcdefg").split(at)
        sh, st = Chunk(100, 7).split(at)
        assert (sh.stream_offset, sh.nbytes) == (rh.stream_offset, rh.nbytes)
        assert (st.stream_offset, st.nbytes) == (rt.stream_offset, rt.nbytes)
        assert rh.end_offset == rt.stream_offset
        assert sh.end_offset == st.stream_offset


def test_chunk_equality_and_hash():
    assert Chunk(0, 4, b"abcd") == Chunk(0, 4, b"abcd")
    assert Chunk(0, 4, b"abcd") != Chunk(0, 4, b"abce")
    assert Chunk(0, 4) != Chunk(1, 4)
    assert hash(Chunk(3, 2, b"xy")) == hash(Chunk(3, 2, b"xy"))
    assert Chunk(0, 1) != object() and not (Chunk(0, 1) == object())


def test_chunk_split_out_of_range():
    with pytest.raises(MemoryError_):
        Chunk(0, 4, b"abcd").split(5)
    with pytest.raises(MemoryError_):
        Chunk(0, 4, b"abcd").split(-1)
    with pytest.raises(MemoryError_):
        Chunk(0, 4).split(-1)


def test_chunk_end_offset():
    assert Chunk(7, 3).end_offset == 10


def test_arena_accounting(arena):
    arena.alloc(100)
    arena.alloc(200, real=False)
    assert arena.allocated_bytes == 300
    assert arena.buffer_count == 2


# ---------------------------------------------------------------------------
# zero-copy plane: view-carrying chunks
# ---------------------------------------------------------------------------

def test_chunk_carries_memoryview_payload(arena):
    buf = arena.alloc(8)
    buf.fill(b"abcdefgh")
    c = Chunk(0, 4, buf.view(2, 4))
    assert c.materialize() == b"cdef"
    assert type(c.materialize()) is bytes
    # bytes payloads pass through materialize unchanged (no copy)
    raw = Chunk(0, 2, b"hi")
    assert raw.materialize() is raw.data
    assert Chunk(0, 2).materialize() is None


def test_chunk_split_views_alias_parent_memory(arena):
    buf = arena.alloc(6)
    buf.fill(b"abcdef")
    head, tail = Chunk(100, 6, buf.view(0, 6)).split(2)
    assert head.data == b"ab" and tail.data == b"cdef"
    assert type(head.data) is memoryview and type(tail.data) is memoryview
    buf.write(0, b"XYZQRS")  # split halves are views, not copies
    assert head.materialize() == b"XY"
    assert tail.materialize() == b"ZQRS"


def test_chunk_split_of_bytes_payload_is_zero_copy():
    head, tail = Chunk(0, 4, b"abcd").split(2)
    # bytes payloads are wrapped in views rather than sliced-and-copied
    assert type(head.data) is memoryview and type(tail.data) is memoryview
    assert head.data == b"ab" and tail.data == b"cd"


def test_chunk_hash_works_for_memoryview_payloads(arena):
    buf = arena.alloc(4)
    buf.fill(b"abcd")
    a = Chunk(0, 4, buf.view(0, 4))
    b = Chunk(0, 4, b"abcd")
    assert a == b
    assert hash(a) == hash(b)
    assert a != Chunk(0, 4, b"abcz")
    assert a != Chunk(0, 4)  # real vs synthetic


def test_chunk_content_digest_is_lazy_and_cached():
    c = Chunk(0, 4, b"abcd")
    assert c._digest is None
    d = c.content_digest()
    assert c.content_digest() is d
    assert Chunk(0, 4).content_digest() is None
    assert Chunk(1, 4, b"abcd").content_digest() == d  # position-independent


# ---------------------------------------------------------------------------
# overlapping-source writes (aliasing semantics)
# ---------------------------------------------------------------------------

def test_write_overlapping_source_snapshots_first(arena):
    """A view of the destination buffer is read in full before any store."""
    buf = arena.alloc(8)
    buf.fill(b"abcdefgh")
    buf.write(0, buf.view(2, 6))  # forward-overlapping memmove
    assert buf.read(0, 8) == b"cdefghgh"
    buf.fill(b"abcdefgh")
    buf.write(2, buf.view(0, 6))  # backward-overlapping
    assert buf.read(0, 8) == b"ababcdef"


def test_write_chunk_overlapping_source_snapshots_first(arena):
    buf = arena.alloc(6)
    buf.fill(b"abcdef")
    buf.write_chunk(1, Chunk(0, 4, buf.view(0, 4)))
    assert buf.read(0, 6) == b"aabcdf"


def test_write_from_other_buffer_view_is_plain_copy(arena):
    src, dst = arena.alloc(4), arena.alloc(4)
    src.fill(b"wxyz")
    dst.write(0, src.view(0, 4))
    assert dst.read(0, 4) == b"wxyz"


# ---------------------------------------------------------------------------
# view pinning (the aliasing rule) and its debug assertions
# ---------------------------------------------------------------------------

def test_pin_release_is_idempotent_and_metered(arena):
    buf = arena.alloc(8)
    meter = CopyMeter()
    buf.meter = meter
    pin = buf.pin_range(0, 4)
    assert meter.pins_outstanding == 1 and meter.pins_total == 1
    pin.release()
    pin.release()
    assert meter.pins_outstanding == 0 and meter.pins_total == 1


def test_pin_on_synthetic_buffer_is_none(arena):
    assert arena.alloc(8, real=False).pin_range(0, 4) is None


def test_debug_mode_rejects_write_into_pinned_range(arena, pin_debug):
    buf = arena.alloc(8)
    pin = buf.pin_range(2, 4)
    with pytest.raises(MemoryError_, match="in-flight view"):
        buf.write(3, b"xx")
    buf.write(6, b"ok")  # disjoint range is fine
    pin.release()
    buf.write(3, b"xx")  # released: reuse allowed


def test_debug_mode_rejects_placing_released_view(arena, pin_debug):
    src, dst = arena.alloc(4), arena.alloc(4)
    src.fill(b"abcd")
    pin = src.pin_range(0, 4)
    chunk = Chunk(0, 4, src.view(0, 4), pin=pin)
    pin.release()
    with pytest.raises(MemoryError_, match="already released"):
        dst.write_chunk(0, chunk)


def test_pin_checks_inactive_outside_debug_mode(arena):
    assert not pin_debug_enabled()
    buf = arena.alloc(8)
    buf.pin_range(0, 8)
    buf.write(0, b"allowed!")  # no assertion outside debug mode


# ---------------------------------------------------------------------------
# CopyMeter accounting and gather/scatter
# ---------------------------------------------------------------------------

def test_meter_counts_copies_and_views(arena):
    buf = arena.alloc(16)
    meter = CopyMeter()
    buf.meter = meter
    buf.write(0, b"abcdefgh")
    assert (meter.payload_copies, meter.payload_bytes_copied) == (1, 8)
    buf.view(0, 4)
    assert (meter.views_forwarded, meter.view_bytes_forwarded) == (1, 4)
    buf.write_chunk(8, Chunk(0, 4, b"data"))
    assert (meter.payload_copies, meter.payload_bytes_copied) == (2, 12)
    # reads/materialisation and synthetic writes are not payload-plane copies
    snap = meter.snapshot()
    assert snap["payload_copies"] == 2 and snap["pins_outstanding"] == 0


def test_gather_scatter_roundtrip(arena):
    src, dst = arena.alloc(12), arena.alloc(12)
    src.fill(b"abcdefghijkl")
    views = src.gather([(8, 4), (0, 4)])
    assert [bytes(v) for v in views] == [b"ijkl", b"abcd"]
    dst.scatter_write(2, views)
    assert dst.read(2, 8) == b"ijklabcd"
    with pytest.raises(MemoryError_):
        src.gather([(0, 20)])
    assert arena.alloc(4, real=False).gather([(0, 2)]) is None


def test_lazy_backing_materialises_on_first_touch(arena):
    buf = arena.alloc(64)
    assert buf.is_real and buf._data is None  # no zero-fill yet
    assert buf.read(0, 4) == b"\x00" * 4  # first touch materialises
    assert buf._data is not None
