"""CPU model: serialization, busy accounting, utilization windows."""

import pytest

from helpers import run_procs
from repro.hosts import Cpu, CpuCostModel, Host


def test_work_advances_time_and_accounts(sim):
    cpu = Cpu(sim)

    def proc():
        yield from cpu.work(500)
        return sim.now

    assert run_procs(sim, proc()) == [500]
    assert cpu.busy_ns_total == 500


def test_work_serializes_fifo(sim):
    cpu = Cpu(sim)
    done = []

    def proc(tag, ns):
        yield from cpu.work(ns)
        done.append((tag, sim.now))

    run_procs(sim, proc("a", 100), proc("b", 50))
    assert done == [("a", 100), ("b", 150)]
    assert cpu.busy_ns_total == 150


def test_zero_work_is_free(sim):
    cpu = Cpu(sim)

    def proc():
        yield from cpu.work(0)
        return sim.now

    assert run_procs(sim, proc()) == [0]
    assert cpu.busy_ns_total == 0


def test_negative_work_rejected(sim):
    cpu = Cpu(sim)
    with pytest.raises(ValueError):
        list(cpu.work(-1))


def test_utilization_window_exact_overlap(sim):
    cpu = Cpu(sim)

    def proc():
        yield sim.timeout(100)
        yield from cpu.work(100)  # busy [100, 200]
        yield sim.timeout(100)
        yield from cpu.work(100)  # busy [300, 400]

    run_procs(sim, proc())
    assert cpu.busy_ns_between(0, 400) == 200
    assert cpu.busy_ns_between(150, 350) == 100  # half of each interval
    assert cpu.utilization_between(100, 200) == 1.0
    assert cpu.utilization_between(200, 300) == 0.0
    assert cpu.utilization_between(0, 0) == 0.0


def test_cost_model_copy_time():
    costs = CpuCostModel(copy_setup_ns=100)
    # 8 Gb/s copy bandwidth = 1 byte/ns
    assert costs.copy_ns(1000, 8e9) == 100 + 1000
    assert costs.copy_ns(0, 8e9) == 100


def test_host_copy_ns_uses_profile(sim):
    host = Host(sim, "h", copy_bandwidth_bps=8e9)
    assert host.copy_ns(1000) == host.cpu.costs.copy_setup_ns + 1000


def test_host_validates_bandwidth(sim):
    with pytest.raises(ValueError):
        Host(sim, "h", copy_bandwidth_bps=0)


def test_host_alloc_labels(sim):
    host = Host(sim, "node1")
    buf = host.alloc(10)
    assert "node1" in buf.label


def test_record_busy_spin_accounting(sim):
    cpu = Cpu(sim)
    cpu.record_busy(100, 300)
    assert cpu.busy_ns_total == 200
    assert cpu.utilization_between(0, 400) == pytest.approx(0.5)
    cpu.record_busy(300, 300)  # empty interval ignored
    assert cpu.busy_ns_total == 200


def test_host_has_independent_cores(sim):
    from helpers import run_procs

    host = Host(sim, "h")
    done = []

    def lib():
        yield from host.cpu.work(100)
        done.append(("lib", sim.now))

    def app():
        yield from host.app_cpu.work(100)
        done.append(("app", sim.now))

    run_procs(sim, lib(), app())
    # both finished at t=100: the cores do not contend with each other
    assert done == [("lib", 100), ("app", 100)]
