"""Circular intermediate-buffer accounting — unit and property tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ring import ReceiverRing, RingError, RingSegment, SenderRingView


# -- sender view ---------------------------------------------------------
def test_sender_reserve_basic():
    v = SenderRingView(100)
    segs = v.reserve(30)
    assert segs == [RingSegment(0, 30)]
    assert v.free == 70
    assert v.in_flight == 30


def test_sender_reserve_wraps_into_two_segments():
    v = SenderRingView(100)
    v.reserve(80)
    v.on_copy_ack(80)  # all copied out
    segs = v.reserve(50)
    assert segs == [RingSegment(80, 20), RingSegment(0, 30)]
    assert v.free == 50


def test_sender_reserve_over_free_rejected():
    v = SenderRingView(100)
    v.reserve(100)
    with pytest.raises(RingError):
        v.reserve(1)


def test_sender_ack_is_cumulative_and_idempotent():
    v = SenderRingView(100)
    v.reserve(60)
    v.on_copy_ack(40)
    assert v.free == 80
    v.on_copy_ack(30)  # stale: ignored
    assert v.free == 80
    v.on_copy_ack(40)  # duplicate: ignored
    assert v.free == 80


def test_sender_ack_beyond_sent_rejected():
    v = SenderRingView(100)
    v.reserve(10)
    with pytest.raises(RingError):
        v.on_copy_ack(11)


def test_ring_validation():
    with pytest.raises(RingError):
        SenderRingView(0)
    with pytest.raises(RingError):
        ReceiverRing(-5)
    with pytest.raises(RingError):
        RingSegment(0, 0)
    v = SenderRingView(10)
    with pytest.raises(RingError):
        v.reserve(0)


# -- receiver ring ---------------------------------------------------------
def test_receiver_arrival_and_consume():
    r = ReceiverRing(100)
    r.on_arrival(RingSegment(0, 40))
    assert r.stored == 40
    segs = r.consume(25)
    assert segs == [RingSegment(0, 25)]
    assert r.stored == 15
    assert r.copied_total == 25
    assert r.read_offset == 25


def test_receiver_rejects_misplaced_arrival():
    r = ReceiverRing(100)
    with pytest.raises(RingError, match="diverged"):
        r.on_arrival(RingSegment(10, 5))


def test_receiver_rejects_overflow():
    r = ReceiverRing(100)
    r.on_arrival(RingSegment(0, 90))
    with pytest.raises(RingError, match="overflow"):
        r.on_arrival(RingSegment(90, 20))


def test_receiver_consume_wraps():
    r = ReceiverRing(100)
    r.on_arrival(RingSegment(0, 90))
    r.consume(90)
    r.on_arrival(RingSegment(90, 10))
    r.on_arrival(RingSegment(0, 20))
    segs = r.consume(30)
    assert segs == [RingSegment(90, 10), RingSegment(0, 20)]


def test_receiver_consume_more_than_stored_rejected():
    r = ReceiverRing(100)
    r.on_arrival(RingSegment(0, 10))
    with pytest.raises(RingError):
        r.consume(11)


# -- wraparound edge cases ---------------------------------------------------
def test_sender_reserve_exactly_to_boundary_single_segment():
    """A reservation ending exactly at capacity must not emit an empty
    second segment, and the write pointer must land back on zero."""
    v = SenderRingView(100)
    segs = v.reserve(100)
    assert segs == [RingSegment(0, 100)]
    v.on_copy_ack(100)
    # next reservation starts at offset 0 again, not at offset 100
    assert v.reserve(10) == [RingSegment(0, 10)]


def test_sender_many_wraps_offsets_stay_in_range():
    v = SenderRingView(64)
    total = 0
    for n in (40, 40, 40, 40, 40, 40, 40):
        for seg in v.reserve(n):
            assert 0 <= seg.offset < 64
            assert seg.offset + seg.nbytes <= 64
        total += n
        v.on_copy_ack(total)
    assert v.reserved_total == total
    assert v.free == 64


def test_receiver_read_pointer_wraps_to_zero():
    r = ReceiverRing(100)
    r.on_arrival(RingSegment(0, 100))
    segs = r.consume(100)
    assert segs == [RingSegment(0, 100)]
    assert r.read_offset == 0  # wrapped exactly to zero, not 100
    r.on_arrival(RingSegment(0, 30))
    assert r.consume(30) == [RingSegment(0, 30)]


def test_capacity_one_ring_cycles():
    sender = SenderRingView(1)
    receiver = ReceiverRing(1)
    for _ in range(5):
        (seg,) = sender.reserve(1)
        assert seg == RingSegment(0, 1)
        receiver.on_arrival(seg)
        receiver.consume(1)
        sender.on_copy_ack(receiver.copied_total)
    assert receiver.copied_total == 5


# -- paired property: sender view and receiver ring stay consistent ---------
@settings(max_examples=200, deadline=None)
@given(
    capacity=st.integers(min_value=1, max_value=128),
    ops=st.lists(
        st.tuples(st.sampled_from(["send", "drain"]), st.integers(min_value=1, max_value=64)),
        max_size=80,
    ),
)
def test_paired_ring_views_never_diverge(capacity, ops):
    """Drive a sender view and receiver ring in lockstep with random
    sends/drains: offsets always line up, byte conservation always holds."""
    sender = SenderRingView(capacity)
    receiver = ReceiverRing(capacity)
    for op, n in ops:
        if op == "send":
            n = min(n, sender.free)
            if n == 0:
                continue
            for seg in sender.reserve(n):
                receiver.on_arrival(seg)  # raises on any divergence
        else:
            n = min(n, receiver.stored)
            if n == 0:
                continue
            receiver.consume(n)
            sender.on_copy_ack(receiver.copied_total)
        # conservation invariants
        assert receiver.written_total - receiver.copied_total == receiver.stored
        assert sender.in_flight >= receiver.stored  # acks may lag, never lead
        assert 0 <= sender.free <= capacity
