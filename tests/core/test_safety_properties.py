"""Property-based verification of the protocol's safety theorem.

Hypothesis drives the pure sender/receiver state machines through random
interleavings of sends, receives, deliveries, copies and ADVERT arrivals —
with both channels strictly in-order (the RC transport guarantee the
algorithm assumes).  Because every runtime invariant from
:mod:`repro.core.invariants` is armed, each example doubles as a model
check of Lemmas 1/4 and Theorem 1; the explicit assertions then verify:

* **no loss / no reorder / no duplication** — the receiver's byte stream is
  exactly the sender's (tracked via per-byte stream offsets);
* **completion order** — exs_recv completions happen in posting order;
* **liveness** — once all traffic is delivered and drained, nothing is
  stuck: all sent bytes were consumed.
"""

from collections import deque

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    DirectPlan,
    ProtocolMode,
    ReceiverAlgorithm,
    ReceiverRing,
    SenderAlgorithm,
    SenderRingView,
)


class Model:
    """The two state machines plus in-order channels and integrity ledger."""

    def __init__(self, capacity: int, mode: ProtocolMode):
        self.mode = mode
        self.sender = SenderAlgorithm(SenderRingView(capacity), mode=mode)
        self.receiver = ReceiverAlgorithm(ReceiverRing(capacity), mode=mode)
        self.data_wire = deque()
        self.advert_wire = deque()
        self.sent_bytes = 0
        self.completions = []  # (recv_id, filled)
        self.delivered_bytes = 0
        #: bytes the sender still owes from user sends (head-of-line model)
        self.send_backlog = 0

    # -- steps -------------------------------------------------------------
    def user_send(self, nbytes: int) -> None:
        self.send_backlog += nbytes

    def pump_sender(self) -> None:
        while self.send_backlog:
            plan = self.sender.next_transfer(self.send_backlog)
            if plan is None:
                return
            self.send_backlog -= plan.nbytes
            self.sent_bytes += plan.nbytes
            self.data_wire.append(plan)

    def user_recv(self, nbytes: int, waitall: bool) -> None:
        _entry, advert = self.receiver.post_recv(nbytes, waitall=waitall)
        if advert is not None:
            self.advert_wire.append(advert)

    def deliver_one_data(self) -> None:
        if not self.data_wire:
            return
        plan = self.data_wire.popleft()
        if isinstance(plan, DirectPlan):
            done = self.receiver.on_direct_arrival(
                plan.seq, plan.nbytes, plan.advert.advert_id, plan.buffer_offset
            )
            self._complete(done)
        else:
            off = plan.seq
            for seg in plan.segments:
                self.receiver.on_indirect_arrival(off, seg)
                off += seg.nbytes

    def deliver_one_advert(self) -> None:
        if self.advert_wire:
            self.sender.on_advert(self.advert_wire.popleft())

    def copy_once(self) -> None:
        plan = self.receiver.next_copy()
        if plan is None:
            return
        self._complete(self.receiver.on_copied(plan))
        self.sender.ring.on_copy_ack(self.receiver.ring.copied_total)
        for _entry, advert in self.receiver.flush_adverts():
            self.advert_wire.append(advert)

    def _complete(self, entries) -> None:
        for e in entries:
            self.completions.append((e.recv_id, e.filled))
            self.delivered_bytes += e.filled

    # -- final checks --------------------------------------------------------
    def drain(self) -> None:
        """Deliver everything in flight and keep the system moving until all
        sent bytes are consumed (bounded loop: progress is guaranteed)."""
        for _ in range(10_000):
            if (
                not self.data_wire
                and not self.send_backlog
                and self.receiver.ring.is_empty
            ):
                break
            self.pump_sender()
            while self.data_wire:
                self.deliver_one_data()
            while self.advert_wire:
                self.deliver_one_advert()
            self.copy_once()
            if self.receiver.pending_recvs == 0:
                # guarantee forward progress for whatever remains
                self.user_recv(1 << 16, False)
        else:  # pragma: no cover
            raise AssertionError("model failed to drain (liveness violation)")

    def check(self) -> None:
        # stream integrity: the receiver consumed exactly the bytes sent
        assert self.receiver.seq == self.sent_bytes
        # bytes are conserved: completed deliveries plus bytes sitting in
        # still-pending (WAITALL) entries account for everything sent
        residual = sum(e.filled for e in self.receiver.queue)
        assert self.delivered_bytes + residual == self.sent_bytes
        # completion order == posting order (recv_ids are monotone)
        ids = [rid for rid, _n in self.completions]
        assert ids == sorted(ids)
        # no duplicated completion ids
        assert len(ids) == len(set(ids))


STEP = st.one_of(
    st.tuples(st.just("send"), st.integers(1, 300)),
    st.tuples(st.just("recv"), st.integers(1, 200), st.booleans()),
    st.tuples(st.just("deliver_data"), st.integers(1, 4)),
    st.tuples(st.just("deliver_advert"), st.integers(1, 4)),
    st.tuples(st.just("copy"), st.integers(1, 3)),
    st.tuples(st.just("pump"),),
)


def run_model(mode: ProtocolMode, capacity: int, steps) -> Model:
    m = Model(capacity, mode)
    for step in steps:
        kind = step[0]
        if kind == "send":
            m.user_send(step[1])
            m.pump_sender()
        elif kind == "recv":
            # keep the receive queue bounded so runs terminate
            if m.receiver.pending_recvs < 50:
                m.user_recv(step[1], step[2] if mode is not ProtocolMode.DIRECT_ONLY else False)
        elif kind == "deliver_data":
            for _ in range(step[1]):
                m.deliver_one_data()
        elif kind == "deliver_advert":
            for _ in range(step[1]):
                m.deliver_one_advert()
        elif kind == "copy":
            for _ in range(step[1]):
                m.copy_once()
        elif kind == "pump":
            m.pump_sender()
    m.drain()
    m.check()
    return m


@settings(max_examples=250, deadline=None)
@given(
    capacity=st.integers(16, 512),
    steps=st.lists(STEP, min_size=1, max_size=120),
)
def test_dynamic_protocol_safety(capacity, steps):
    run_model(ProtocolMode.DYNAMIC, capacity, steps)


@settings(max_examples=100, deadline=None)
@given(
    capacity=st.integers(16, 512),
    steps=st.lists(STEP, min_size=1, max_size=80),
)
def test_indirect_only_protocol_safety(capacity, steps):
    run_model(ProtocolMode.INDIRECT_ONLY, capacity, steps)


@settings(max_examples=100, deadline=None)
@given(
    capacity=st.integers(16, 512),
    steps=st.lists(STEP, min_size=1, max_size=80),
)
def test_direct_only_protocol_safety(capacity, steps):
    run_model(ProtocolMode.DIRECT_ONLY, capacity, steps)


@settings(max_examples=60, deadline=None)
@given(steps=st.lists(STEP, min_size=10, max_size=200))
def test_tiny_buffer_stress(steps):
    """A pathologically small intermediate buffer (heavy wrap-and-block traffic)."""
    run_model(ProtocolMode.DYNAMIC, 7, steps)
