"""Sender matching algorithm (paper Fig. 2) — unit tests."""

import pytest

from repro.core import (
    Advert,
    DirectPlan,
    IndirectPlan,
    ProtocolMode,
    SenderAlgorithm,
    SenderRingView,
)
from repro.core.invariants import SafetyViolation


def make_sender(capacity=100, mode=ProtocolMode.DYNAMIC):
    return SenderAlgorithm(SenderRingView(capacity), mode=mode)


def adv(aid, seq, length, phase=0, waitall=False):
    return Advert(advert_id=aid, seq=seq, length=length, phase=phase, waitall=waitall)


def test_direct_match_consumes_advert():
    s = make_sender()
    s.on_advert(adv(1, 0, 50))
    plan = s.next_transfer(30)
    assert isinstance(plan, DirectPlan)
    assert plan.nbytes == 30 and plan.seq == 0 and plan.phase == 0
    assert plan.advert_done  # non-WAITALL adverts are single-shot
    assert s.seq == 30
    assert s.pending_advert_count == 0


def test_send_split_across_adverts_and_buffer():
    s = make_sender(capacity=100)
    s.on_advert(adv(1, 0, 20))
    s.on_advert(adv(2, 1, 25))
    p1 = s.next_transfer(200)
    p2 = s.next_transfer(200 - p1.nbytes)
    p3 = s.next_transfer(200 - p1.nbytes - p2.nbytes)
    assert (p1.nbytes, p2.nbytes) == (20, 25)
    assert isinstance(p3, IndirectPlan) and p3.nbytes == 100
    assert s.seq == 145
    assert s.stats.mode_switches == 1


def test_waitall_advert_held_at_head_until_full():
    s = make_sender()
    s.on_advert(adv(1, 0, 100, waitall=True))
    p1 = s.next_transfer(40)
    assert not p1.advert_done and p1.buffer_offset == 0
    p2 = s.next_transfer(30)
    assert not p2.advert_done and p2.buffer_offset == 40
    p3 = s.next_transfer(30)
    assert p3.advert_done and p3.buffer_offset == 70
    assert s.pending_advert_count == 0


def test_blocked_when_no_advert_and_no_space():
    s = make_sender(capacity=10)
    assert isinstance(s.next_transfer(5), IndirectPlan)
    assert isinstance(s.next_transfer(5), IndirectPlan)
    assert s.next_transfer(5) is None
    assert s.is_blocked_on_space
    assert s.stats.sender_blocked == 1
    s.ring.on_copy_ack(10)
    assert isinstance(s.next_transfer(5), IndirectPlan)


def test_indirect_plan_wraps_with_two_segments():
    s = make_sender(capacity=100)
    s.next_transfer(80)
    s.ring.on_copy_ack(80)
    plan = s.next_transfer(40)
    assert isinstance(plan, IndirectPlan)
    assert len(plan.segments) == 2
    assert plan.total_bytes == 40
    assert s.stats.indirect_transfers == 3  # 1 + 2 segments


def test_stale_advert_discarded_by_seq():
    s = make_sender()
    s.next_transfer(50)  # indirect; phase 1, seq 50
    s.on_advert(adv(1, 0, 100, phase=0))  # S_A < S_s
    assert s.next_transfer(10).phase == 1  # indirect again
    assert s.stats.adverts_discarded == 1


def test_resync_advert_accepted_and_phase_follows():
    s = make_sender()
    s.next_transfer(50)  # indirect; phase 1
    s.on_advert(adv(5, 50, 100, phase=2))  # matching seq, newer direct phase
    plan = s.next_transfer(10)
    assert isinstance(plan, DirectPlan)
    assert plan.phase == 2
    assert s.phase == 2
    assert s.stats.mode_switches == 2


def test_fig8_hazard_phase_skip():
    """Discarding a stale ADVERT from a newer phase must skip the sender past
    that whole generation (paper Fig. 8)."""
    s = make_sender()
    s.next_transfer(50)  # phase 1, seq 50
    # Receiver resynced at estimate 10 (stale) in phase 2; sender is at 50.
    s.on_advert(adv(7, 10, 100, phase=2))
    plan = s.next_transfer(10)  # discards; phase must jump past 2
    assert s.phase == 3
    assert isinstance(plan, IndirectPlan)
    # A later advert from the same generation with a *coincidentally* matching
    # seq must also be rejected (its phase 2 < sender phase 3).
    s.on_advert(adv(8, s.seq, 100, phase=2))
    plan2 = s.next_transfer(10)
    assert isinstance(plan2, IndirectPlan)
    assert s.stats.adverts_discarded == 2


def test_lemma4_checked_at_runtime():
    """Mid-direct-phase ADVERTs must carry the sender's phase (Lemma 4);
    feeding an inconsistent one trips the runtime check."""
    s = make_sender()
    s.on_advert(adv(1, 0, 10))
    s.next_transfer(10)  # direct, phase 0
    s.on_advert(adv(2, 10, 10, phase=2))  # impossible per Lemma 4
    with pytest.raises(SafetyViolation, match="Lemma 4"):
        s.next_transfer(5)


def test_direct_only_mode_never_uses_buffer():
    s = make_sender(mode=ProtocolMode.DIRECT_ONLY)
    assert s.next_transfer(10) is None  # blocked, not indirect
    s.on_advert(adv(1, 0, 10))
    assert isinstance(s.next_transfer(10), DirectPlan)
    assert s.stats.indirect_transfers == 0


def test_indirect_only_mode_rejects_adverts():
    s = make_sender(mode=ProtocolMode.INDIRECT_ONLY)
    with pytest.raises(ValueError):
        s.on_advert(adv(1, 0, 10))
    assert isinstance(s.next_transfer(10), IndirectPlan)


def test_zero_remaining_rejected():
    s = make_sender()
    with pytest.raises(ValueError):
        s.next_transfer(0)


def test_stats_byte_accounting():
    s = make_sender(capacity=1000)
    s.on_advert(adv(1, 0, 100))
    s.next_transfer(60)
    s.next_transfer(40)
    assert s.stats.direct_bytes == 60
    assert s.stats.indirect_bytes == 40
    assert s.stats.direct_ratio == 0.5
    assert s.stats.total_bytes == 100
