"""Reconstructions of the paper's hazard diagrams (Figs. 1, 6, 7, 8).

Each test replays the message interleaving a figure illustrates and checks
that the implemented algorithm resolves it exactly as the paper's fixed
protocol does — stale ADVERT sequences are dropped wholesale and no direct
transfer ever lands in the wrong buffer.

The scenarios drive the *pure* sender/receiver state machines through an
explicit in-order wire, so the interleavings are exact.
"""

from collections import deque

import pytest

from repro.core import (
    Advert,
    DirectPlan,
    IndirectPlan,
    ProtocolMode,
    ReceiverAlgorithm,
    ReceiverRing,
    SenderAlgorithm,
    SenderRingView,
)
from repro.core.invariants import SafetyViolation


class Wire:
    """Explicit in-order channels between the two state machines."""

    def __init__(self, capacity=1000):
        self.sender = SenderAlgorithm(SenderRingView(capacity))
        self.receiver = ReceiverAlgorithm(ReceiverRing(capacity))
        self.data = deque()     # sender -> receiver transfers (in order)
        self.adverts = deque()  # receiver -> sender ADVERTs (in order)
        self.delivered = []

    # -- actions -----------------------------------------------------------
    def post_recv(self, length, waitall=False):
        entry, advert = self.receiver.post_recv(length, waitall=waitall)
        if advert is not None:
            self.adverts.append(advert)
        return entry

    def send(self, nbytes):
        """Sender pushes *nbytes*; transfers enter the data channel."""
        remaining = nbytes
        plans = []
        while remaining:
            plan = self.sender.next_transfer(remaining)
            if plan is None:
                break
            plans.append(plan)
            self.data.append(plan)
            remaining -= plan.nbytes
        return plans

    def deliver_advert(self, count=None):
        n = len(self.adverts) if count is None else count
        for _ in range(n):
            self.sender.on_advert(self.adverts.popleft())

    def deliver_data(self, count=None):
        n = len(self.data) if count is None else count
        for _ in range(n):
            plan = self.data.popleft()
            if isinstance(plan, DirectPlan):
                done = self.receiver.on_direct_arrival(
                    plan.seq, plan.nbytes, plan.advert.advert_id, plan.buffer_offset
                )
                self.delivered.extend(done)
            else:
                off = plan.seq
                for seg in plan.segments:
                    self.receiver.on_indirect_arrival(off, seg)
                    off += seg.nbytes

    def drain_copies(self):
        while True:
            plan = self.receiver.next_copy()
            if plan is None:
                break
            self.delivered.extend(self.receiver.on_copied(plan))
            self.sender.ring.on_copy_ack(self.receiver.ring.copied_total)
        for _entry, advert in self.receiver.flush_adverts():
            self.adverts.append(advert)


def test_fig1_indirect_crosses_multiple_adverts():
    """Fig. 1: an indirect transfer crosses several in-flight ADVERTs; the
    phase mechanism must prevent any of them from being matched later."""
    w = Wire()
    # Receiver posts several recvs; adverts are in flight (not yet delivered).
    for _ in range(3):
        w.post_recv(10)
    # Sender, having no adverts yet, sends indirectly.
    w.send(25)
    assert w.sender.phase == 1
    # The crossed adverts now arrive — all stale (seq 0 < sender seq 25).
    w.deliver_advert()
    plans = w.send(5)
    assert all(isinstance(p, IndirectPlan) for p in plans)
    assert w.sender.stats.adverts_discarded == 3
    # Receiver consumes everything from the buffer, in order.
    w.deliver_data()
    w.drain_copies()
    assert w.receiver.seq == 30
    assert [e.filled for e in w.delivered] == [10, 10, 10]


def test_fig6_fig7_no_advert_until_prior_phase_satisfied():
    """Figs. 6/7: after an indirect transfer, the receiver must not send new
    ADVERTs until the buffer is drained and every prior-phase exs_recv has
    been satisfied — otherwise a later ADVERT could be matched at the wrong
    stream position."""
    w = Wire()
    w.post_recv(10)
    w.post_recv(10)
    w.deliver_advert()
    w.send(20)                     # two direct transfers
    w.deliver_data()
    # Sender runs ahead: the next send becomes indirect.
    w.send(12)
    assert w.sender.phase == 1
    w.deliver_data()
    assert w.receiver.phase == 1
    # Receiver posts a new recv mid-drain: Fig. 7's fix = suppress the ADVERT.
    w.post_recv(10)
    assert len(w.adverts) == 0
    assert w.receiver.unadvertised_recvs == 1
    w.drain_copies()               # 10 bytes satisfy the queued recv ...
    # ... but 2 bytes remain buffered, so a fresh recv is still suppressed.
    w.post_recv(10)
    assert len(w.adverts) == 0
    w.drain_copies()               # ring fully drained now
    # Only now may the receiver advertise again — resynchronised.
    w.post_recv(10)
    assert len(w.adverts) == 1
    advert = w.adverts[0]
    assert advert.seq == 32 == w.sender.seq == w.receiver.seq
    assert advert.phase == 2
    # And the sender accepts it, returning to direct mode.
    w.deliver_advert()
    (plan,) = w.send(5)
    assert isinstance(plan, DirectPlan)
    w.deliver_data()
    w.drain_copies()
    total = sum(e.filled for e in w.delivered)
    assert total == 37 == w.receiver.seq


def test_fig8_sender_must_skip_generation_on_stale_newer_phase():
    """Fig. 8: when a stale ADVERT arrives with a *newer* phase, the sender
    must advance past that phase so later ADVERTs of the same generation
    cannot accidentally match on sequence number."""
    w = Wire()
    # Round 1: indirect burst of 20 bytes.
    w.send(20)
    w.deliver_data()
    # Three recvs arrive while the buffer holds data: all unadvertised.
    for _ in range(3):
        w.post_recv(10)
    assert len(w.adverts) == 0
    # Draining satisfies the first two recvs and empties the buffer; the
    # third is re-advertised at the true position (seq 20), phase 2.
    w.drain_copies()
    assert [(a.phase, a.seq) for a in w.adverts] == [(2, 20)]
    # Meanwhile the sender (still phase 1) pushes 15 more bytes indirectly.
    w.send(15)
    assert w.sender.seq == 35
    # The phase-2 advert now arrives: stale (seq 20 < 35); the sender must
    # skip past generation 2 entirely.
    w.deliver_advert()
    plans = w.send(5)
    assert w.sender.stats.adverts_discarded == 1
    assert w.sender.phase == 3
    assert all(isinstance(p, IndirectPlan) for p in plans)
    # A *forged* generation-2 advert whose seq coincidentally matches the
    # sender's position must also be rejected — the exact Fig. 8 corruption.
    w.adverts.append(
        Advert(advert_id=999, seq=w.sender.seq, length=10, phase=2)
    )
    w.deliver_advert()
    plans = w.send(5)
    assert all(isinstance(p, IndirectPlan) for p in plans)
    assert w.sender.stats.adverts_discarded == 2
    # Everything still lands intact via the buffer.
    w.deliver_data()
    w.post_recv(10)
    w.post_recv(20)
    w.drain_copies()
    assert w.receiver.seq == w.sender.seq == 45


def test_full_cycle_direct_indirect_direct_integrity():
    """End-to-end lockstep cycle through both modes preserves the stream."""
    w = Wire(capacity=64)
    sent = 0
    for round_no in range(6):
        for _ in range(2):
            w.post_recv(16)
        if round_no % 2 == 0:
            w.deliver_advert()  # adverts arrive in time -> direct
        w.send(32)
        sent += 32
        w.deliver_data()
        w.drain_copies()
        w.deliver_advert()
    assert w.receiver.seq == sent
    assert w.sender.stats.direct_transfers > 0
    assert w.sender.stats.indirect_transfers > 0
    assert w.sender.stats.mode_switches >= 2
