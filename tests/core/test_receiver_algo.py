"""Receiver algorithms (paper Figs. 3, 4, 5) — unit tests."""

import pytest

from repro.core import (
    ProtocolMode,
    ReceiverAlgorithm,
    ReceiverRing,
    RingSegment,
)
from repro.core.invariants import SafetyViolation


def make_receiver(capacity=100, mode=ProtocolMode.DYNAMIC):
    return ReceiverAlgorithm(ReceiverRing(capacity), mode=mode)


# -- Fig. 3: advertising -------------------------------------------------
def test_post_recv_adverts_when_gate_open():
    r = make_receiver()
    entry, advert = r.post_recv(50)
    assert advert is not None
    assert advert.seq == 0 and advert.phase == 0 and advert.length == 50
    # non-WAITALL estimate advances by the guaranteed minimum of 1
    assert r.advert_seq_estimate == 1


def test_waitall_estimate_advances_by_full_length():
    r = make_receiver()
    _entry, advert = r.post_recv(50, waitall=True)
    assert advert.waitall
    assert r.advert_seq_estimate == 50


def test_adverts_suppressed_while_buffer_nonempty():
    r = make_receiver()
    r.post_recv(50)
    r.on_indirect_arrival(0, RingSegment(0, 10))
    _entry, advert = r.post_recv(50)
    assert advert is None
    assert r.unadvertised_recvs == 1
    assert r.stats.adverts_suppressed == 1


def test_adverts_suppressed_behind_unadvertised_recv():
    """k_b > 0 keeps later receives unadvertised too (FIFO order)."""
    r = make_receiver()
    r.post_recv(10)
    r.on_indirect_arrival(0, RingSegment(0, 10))
    r.post_recv(10)
    _e, a = r.post_recv(10)
    assert a is None and r.unadvertised_recvs == 2


# -- Fig. 4: arrivals ------------------------------------------------------
def test_direct_arrival_completes_non_waitall():
    r = make_receiver()
    entry, advert = r.post_recv(50)
    done = r.on_direct_arrival(0, 30, advert.advert_id, 0)
    assert done == [entry]
    assert entry.filled == 30 and entry.completed
    assert r.seq == 30
    # estimate corrected: +1 at advert time, +29 on arrival
    assert r.advert_seq_estimate == 30


def test_direct_arrivals_fill_waitall_incrementally():
    r = make_receiver()
    entry, advert = r.post_recv(60, waitall=True)
    assert r.on_direct_arrival(0, 20, advert.advert_id, 0) == []
    assert r.on_direct_arrival(20, 20, advert.advert_id, 20) == []
    done = r.on_direct_arrival(40, 20, advert.advert_id, 40)
    assert done == [entry] and entry.filled == 60
    assert r.advert_seq_estimate == 60  # no correction for WAITALL


def test_direct_arrival_seq_gap_trips_theorem_check():
    r = make_receiver()
    _entry, advert = r.post_recv(50)
    with pytest.raises(SafetyViolation, match="no loss"):
        r.on_direct_arrival(5, 10, advert.advert_id, 0)


def test_direct_arrival_wrong_advert_trips_head_match():
    r = make_receiver()
    r.post_recv(50)
    _e2, a2 = r.post_recv(50)
    with pytest.raises(SafetyViolation, match="head match"):
        r.on_direct_arrival(0, 10, a2.advert_id, 0)


def test_direct_arrival_while_ring_nonempty_trips_ordering():
    r = make_receiver()
    _entry, advert = r.post_recv(50)
    r.on_indirect_arrival(0, RingSegment(0, 10))
    with pytest.raises(SafetyViolation, match="ordering"):
        r.on_direct_arrival(10, 10, advert.advert_id, 0)


def test_indirect_arrival_flips_phase_and_counts_prior_adverts():
    r = make_receiver()
    r.post_recv(50)
    r.post_recv(50)
    assert r.phase == 0
    r.on_indirect_arrival(0, RingSegment(0, 20))
    assert r.phase == 1
    assert r.prior_phase_adverts == 2
    assert r.stats.mode_switches == 1


def test_indirect_arrival_seq_gap_trips_continuity():
    r = make_receiver()
    r.post_recv(50)
    with pytest.raises(SafetyViolation, match="continuity"):
        r.on_indirect_arrival(7, RingSegment(0, 10))


# -- Fig. 5: copy-out ----------------------------------------------------
def test_copy_out_completes_and_corrects_estimate():
    r = make_receiver()
    entry, _advert = r.post_recv(50)
    r.on_indirect_arrival(0, RingSegment(0, 20))
    plan = r.next_copy()
    assert plan.entry is entry and plan.nbytes == 20 and plan.dest_offset == 0
    done = r.on_copied(plan)
    assert done == [entry]
    assert r.seq == 20
    assert r.prior_phase_adverts == 0  # satisfied from the buffer
    assert r.advert_seq_estimate == 20  # 1 + (20 - 1)


def test_copy_clamped_to_entry_remaining():
    r = make_receiver()
    r.post_recv(10, waitall=True)
    r.post_recv(100)
    r.on_indirect_arrival(0, RingSegment(0, 50))
    plan = r.next_copy()
    assert plan.nbytes == 10  # head entry takes only 10
    r.on_copied(plan)
    plan2 = r.next_copy()
    assert plan2.nbytes == 40


def test_no_copy_without_data_or_recvs():
    r = make_receiver()
    assert r.next_copy() is None
    r.post_recv(10)
    assert r.next_copy() is None


# -- resynchronisation (Fig. 3 lines 5-7 + flush) ---------------------------
def test_flush_adverts_waits_for_gate():
    r = make_receiver()
    e1, _a1 = r.post_recv(30)
    r.on_indirect_arrival(0, RingSegment(0, 40))
    e2, a2 = r.post_recv(30)
    assert a2 is None
    # buffer still holds data after first copy -> no flush yet
    r.on_copied(r.next_copy())  # fills e1 with 30, 10 left in ring
    assert r.flush_adverts() == []
    r.on_copied(r.next_copy())  # drains the last 10 ring bytes into e2,
    # completing it short (stream semantics: non-WAITALL returns available)
    assert r.flush_adverts() == []
    e3, a3 = r.post_recv(30)
    # gate is open again: fresh recv adverts immediately, in the NEW phase
    assert a3 is not None
    assert a3.phase == 2
    assert a3.seq == r.seq == 40  # resynchronised to the true position


def test_flush_adverts_reissues_queued_recvs_in_order():
    r = make_receiver()
    r.post_recv(100, waitall=True)
    r.on_indirect_arrival(0, RingSegment(0, 10))
    r.post_recv(20)
    r.post_recv(30)
    assert r.unadvertised_recvs == 2
    r.on_copied(r.next_copy())  # 10 bytes into the waitall entry; ring empty
    # head (waitall, advert from phase 0) still unsatisfied -> k_a > 0 -> no flush
    assert r.prior_phase_adverts == 1
    assert r.flush_adverts() == []
    # satisfy the waitall entry directly? no - sender would be indirect; feed
    # the remaining 90 bytes through the ring
    r.on_indirect_arrival(10, RingSegment(10, 90))
    r.on_copied(r.next_copy())
    assert r.prior_phase_adverts == 0
    flushed = r.flush_adverts()
    assert [a.length for _e, a in flushed] == [20, 30]
    assert r.unadvertised_recvs == 0
    assert all(a.phase == 2 for _e, a in flushed)
    assert flushed[0][1].seq == 100


def test_indirect_only_mode_never_adverts():
    r = make_receiver(mode=ProtocolMode.INDIRECT_ONLY)
    _e, a = r.post_recv(10)
    assert a is None
    r.on_indirect_arrival(0, RingSegment(0, 5))
    r.on_copied(r.next_copy())
    assert r.flush_adverts() == []
    assert r.stats.adverts_sent == 0


def test_post_recv_validation():
    r = make_receiver()
    with pytest.raises(ValueError):
        r.post_recv(0)
