"""Phase algebra (paper §III) — unit and property tests."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.phase import (
    INITIAL_PHASE,
    is_direct,
    is_indirect,
    next_phase,
    to_direct,
    to_indirect,
)


def test_initial_phase_is_direct():
    assert INITIAL_PHASE == 0
    assert is_direct(INITIAL_PHASE)


def test_parity_convention():
    assert is_direct(0) and is_direct(2) and is_direct(100)
    assert is_indirect(1) and is_indirect(3) and is_indirect(99)


def test_next_phase_flips_parity():
    assert next_phase(0) == 1
    assert next_phase(7) == 8


@given(st.integers(min_value=0, max_value=10**9))
def test_exactly_one_of_direct_indirect(p):
    assert is_direct(p) != is_indirect(p)


@given(st.integers(min_value=0, max_value=10**9))
def test_next_phase_monotone_and_flips(p):
    n = next_phase(p)
    assert n > p
    assert is_direct(n) != is_direct(p)


@given(st.integers(min_value=0, max_value=10**9))
def test_to_direct_properties(p):
    d = to_direct(p)
    assert is_direct(d)
    assert p <= d <= p + 1


@given(st.integers(min_value=0, max_value=10**9))
def test_to_indirect_properties(p):
    i = to_indirect(p)
    assert is_indirect(i)
    assert p <= i <= p + 1
