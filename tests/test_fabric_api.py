"""Fabric assembly API, Testbed compatibility, and bit-identity regression."""

import pytest

from helpers import run_procs
from repro.config import ScenarioConfig
from repro.exs import BlockingSocket, ExsSocketOptions
from repro.fabric import Fabric
from repro.simnet import FaultProfile, ImpairmentModel, SwitchConfig, Topology
from repro.testbed import Testbed


def _run_transfer(assembly, nbytes=20_000, options=None, port=4321):
    """One client→server stream on any two-host assembly; fingerprint tuple."""
    out = {}

    def server():
        conn = yield from BlockingSocket.accept_one(
            assembly.stack("server"), port, options=options)
        out["data"] = yield from conn.recv_bytes(nbytes, waitall=True)

    def client():
        conn = yield from BlockingSocket.connect(
            assembly.stack("client"), port, options=options)
        yield from conn.send_bytes(b"x" * nbytes)

    run_procs(assembly.sim, server(), client())
    stats = assembly.sim.calendar_stats()
    return assembly.now, stats["events_executed"], len(out["data"])


# ----------------------------------------------------------------------
# bit-identity: Fabric's two-host wire IS the legacy Testbed
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", [3, 11])
@pytest.mark.parametrize("kwargs", [
    {},
    {"faults": FaultProfile(drop_prob=0.05)},  # reliability auto-derived
], ids=["clean", "lossy"])
def test_fabric_two_host_star_matches_testbed(seed, kwargs):
    legacy = _run_transfer(Testbed(seed=seed, **kwargs))
    star = _run_transfer(Fabric(
        topology=Topology.star(["client", "server"]), seed=seed, **kwargs))
    assert star == legacy


@pytest.mark.parametrize("transport", ["wwi", "eager_rendezvous"])
def test_fabric_bit_identity_across_transports(transport):
    options = ExsSocketOptions(transport=transport)
    legacy = _run_transfer(Testbed(seed=7), options=options)
    fabric = _run_transfer(Fabric(topology=Topology.point_to_point(), seed=7),
                           options=options)
    assert fabric == legacy


def test_from_scenario_matches_direct_construction():
    sc = ScenarioConfig(seed=5)
    assert (_run_transfer(Testbed.from_scenario(sc))
            == _run_transfer(Fabric.from_scenario(sc))
            == _run_transfer(Testbed(seed=5)))


# ----------------------------------------------------------------------
# Testbed surface: shims and scenario validation
# ----------------------------------------------------------------------
def test_client_host_attribute_shim_warns():
    tb = Testbed(seed=0)
    with pytest.warns(DeprecationWarning, match="client_host is deprecated"):
        host = tb.client_host
    assert host is tb.host("client")
    with pytest.warns(DeprecationWarning, match="server_host is deprecated"):
        assert tb.server_host is tb.host("server")


def test_testbed_rejects_multi_host_topology():
    sc = ScenarioConfig(topology=Topology.star(["a", "b", "c"]))
    with pytest.raises(ValueError, match="two-host wire"):
        Testbed.from_scenario(sc)


def test_fabric_rejects_scenario_plus_knobs():
    with pytest.raises(ValueError, match="not both"):
        Fabric(ScenarioConfig(seed=1), seed=2)
    with pytest.raises(ValueError, match="both directly and in the scenario"):
        Fabric(ScenarioConfig(topology=Topology.star(["a", "b", "c"])),
               topology=Topology.point_to_point())


# ----------------------------------------------------------------------
# Fabric public surface
# ----------------------------------------------------------------------
def test_host_lookup_typo_lists_known_hosts():
    fab = Fabric(topology=Topology.star(["a", "b", "c"]))
    with pytest.raises(KeyError, match="a, b, c"):
        fab.host("q")
    with pytest.raises(KeyError):
        fab.stack("q")
    with pytest.raises(KeyError):
        fab.device("q")


def test_connect_rejects_self_connection():
    fab = Fabric(topology=Topology.star(["a", "b", "c"]))
    with pytest.raises(ValueError, match="itself"):
        fab.connect("a", "a")


def test_legacy_link_property_only_on_direct_fabrics():
    direct = Fabric(topology=Topology.point_to_point())
    assert direct.link is direct.links["client-server"]
    multi = Fabric(topology=Topology.star(["a", "b", "c"]))
    with pytest.raises(AttributeError, match="multiple links"):
        multi.link
    assert multi.impairment is None


def test_connect_establishes_across_a_switch():
    fab = Fabric(topology=Topology.star(["a", "b", "c"]), seed=2)
    pair = fab.connect("a", "c")
    fab.run()
    assert pair.established.triggered
    assert pair.a_socket is not None and pair.b_socket is not None
    assert pair.a_socket.stack is fab.stack("a")
    assert pair.b_socket.stack is fab.stack("c")


def test_connect_auto_ports_are_distinct():
    fab = Fabric(topology=Topology.star(["a", "b", "c"]))
    p1 = fab.connect("a", "b")
    p2 = fab.connect("a", "c")
    assert p1.port != p2.port


def test_three_host_transfer_over_switch():
    fab = Fabric(topology=Topology.star(["a", "b", "c"]), seed=4)
    out = {}

    def server():
        conn = yield from BlockingSocket.accept_one(fab.stack("c"), 5000)
        out["data"] = yield from conn.recv_bytes(30_000, waitall=True)

    def client():
        conn = yield from BlockingSocket.connect(fab.stack("a"), 5000, to="c")
        yield from conn.send_bytes(b"z" * 30_000)

    run_procs(fab.sim, server(), client())
    assert out["data"] == b"z" * 30_000
    # the payload crossed both access links through the hub
    hub = fab.switches["switch0"]
    assert hub.ports["c"].forwarded_bytes >= 30_000


def test_switched_runs_are_deterministic():
    def once():
        fab = Fabric(topology=Topology.star(["a", "b", "c"]), seed=9)
        pair = fab.connect("a", "c")
        fab.run()
        return fab.now, fab.sim.calendar_stats()["events_executed"]

    assert once() == once()


# ----------------------------------------------------------------------
# per-edge fault addressing
# ----------------------------------------------------------------------
def test_fault_profile_applies_to_every_edge():
    fab = Fabric(topology=Topology.star(["a", "b", "c"]),
                 faults=FaultProfile(drop_prob=0.1))
    assert set(fab.impairments) == {"a-switch0", "b-switch0", "c-switch0"}
    assert fab.reliability is not None  # auto-derived for the lossy fabric


def test_per_edge_fault_dict_targets_one_edge():
    fab = Fabric(topology=Topology.star(["a", "b", "c"]),
                 faults={"c-switch0": FaultProfile(drop_prob=0.2)})
    assert set(fab.impairments) == {"c-switch0"}
    assert fab.impairments["c-switch0"]._dirs[0].profile.drop_prob == 0.2


def test_per_edge_fault_unknown_edge_fails_eagerly():
    with pytest.raises(ValueError, match="unknown edge"):
        Fabric(topology=Topology.star(["a", "b", "c"]),
               faults={"a-b": FaultProfile(drop_prob=0.2)})


def test_per_edge_fault_wrong_value_type():
    with pytest.raises(TypeError, match="must be a FaultProfile"):
        Fabric(topology=Topology.star(["a", "b", "c"]),
               faults={"a-switch0": 0.5})


def test_prebuilt_impairment_model_rejected_on_multi_host():
    model = ImpairmentModel(FaultProfile(drop_prob=0.1), seed=1)
    with pytest.raises(ValueError, match="two-host wire"):
        Fabric(topology=Topology.star(["a", "b", "c"]), faults=model)


def test_lossy_switched_transfer_recovers():
    fab = Fabric(topology=Topology.star(["a", "b", "c"]), seed=6,
                 faults={"c-switch0": FaultProfile(drop_prob=0.05)})
    out = {}

    def server():
        conn = yield from BlockingSocket.accept_one(fab.stack("c"), 5000)
        out["data"] = yield from conn.recv_bytes(40_000, waitall=True)

    def client():
        conn = yield from BlockingSocket.connect(fab.stack("a"), 5000, to="c")
        yield from conn.send_bytes(b"r" * 40_000)

    run_procs(fab.sim, server(), client(), max_events=20_000_000)
    assert out["data"] == b"r" * 40_000


# ----------------------------------------------------------------------
# ScenarioConfig integration
# ----------------------------------------------------------------------
def test_scenario_round_trips_topology_and_scale_knobs():
    sc = ScenarioConfig(
        seed=2,
        topology=Topology.star(
            ["a", "b", "c"],
            switch=SwitchConfig(policy="backpressure", port_queue_bytes=8192),
        ),
        faults={"a-switch0": FaultProfile(drop_prob=0.01)},
        srq_depth=64,
        cq_shards=2,
    )
    rt = ScenarioConfig.from_dict(sc.to_dict())
    assert rt.topology == sc.topology
    assert rt.srq_depth == 64 and rt.cq_shards == 2
    assert rt.faults == {"a-switch0": FaultProfile(drop_prob=0.01)}


def test_scenario_validates_fabric_knobs():
    with pytest.raises(ValueError, match="topology"):
        ScenarioConfig(faults={"a-switch0": FaultProfile(drop_prob=0.1)})
    with pytest.raises(ValueError, match="unknown edge"):
        ScenarioConfig(topology=Topology.star(["a", "b", "c"]),
                       faults={"zz": FaultProfile(drop_prob=0.1)})
    with pytest.raises(ValueError):
        ScenarioConfig(srq_depth=0)
    with pytest.raises(ValueError):
        ScenarioConfig(cq_shards=-1)


def test_build_fabric_builds_the_described_topology():
    sc = ScenarioConfig(seed=1, topology=Topology.star(["a", "b", "c"]))
    fab = sc.build_fabric()
    assert isinstance(fab, Fabric)
    assert fab.host_names == ("a", "b", "c")
    assert "switch0" in fab.switches
