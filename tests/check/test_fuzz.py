"""Schedule-permutation fuzzer: determinism and FIFO-identity guarantees."""

from __future__ import annotations

from repro.check import FuzzCase, run_case, run_fuzz
from repro.config import ScenarioConfig

CASE = FuzzCase(messages=12)


def test_same_seed_is_bit_deterministic():
    scenario = ScenarioConfig(schedule=("random", 7))
    a = run_case(CASE, scenario)
    b = run_case(CASE, scenario)
    assert a.ok and b.ok
    assert a.fingerprint == b.fingerprint


def test_fifo_policy_is_byte_identical_to_unfuzzed():
    plain = run_case(CASE, ScenarioConfig())
    fifo = run_case(CASE, ScenarioConfig(schedule=("fifo", 0)))
    assert plain.ok and fifo.ok
    assert plain.fingerprint == fifo.fingerprint


def test_run_fuzz_collects_outcomes_per_seed():
    report = run_fuzz(range(3), CASE)
    assert report.ok
    assert len(report.outcomes) == 3
    assert all(o.ok for o in report.outcomes)
    # the scenario embedded in each outcome records its schedule seed
    seeds = [o.scenario.schedule for o in report.outcomes]
    assert seeds == [("random", 0), ("random", 1), ("random", 2)]


def test_failing_outcome_becomes_replayable_counterexample():
    # an impossible event budget guarantees a RuntimeError from run_blast
    base = ScenarioConfig(max_events=10)
    report = run_fuzz([5], CASE, base)
    assert not report.ok
    ce = report.failures[0]
    assert ce.kind == "fuzz"
    assert ce.scenario["schedule"] == ["random", 5]
    assert ce.fuzz_case["messages"] == CASE.messages


def test_fuzz_case_round_trips():
    case = FuzzCase(messages=7, waitall=True, mode="indirect")
    assert FuzzCase.from_dict(case.to_dict()) == case


def test_each_transport_variant_is_bit_deterministic():
    """The fuzz fingerprint covers copy/transfer accounting, so this pins
    bit-determinism of every data plane, not just byte totals."""
    for transport in (None, "wwi", "eager_rendezvous"):
        case = FuzzCase(messages=10, transport=transport)
        scenario = ScenarioConfig(schedule=("random", 13))
        a = run_case(case, scenario)
        b = run_case(case, scenario)
        assert a.ok and b.ok, f"transport={transport}"
        assert a.fingerprint == b.fingerprint, f"transport={transport}"


def test_selective_repeat_base_is_bit_deterministic():
    from repro.verbs import ReliabilityConfig

    rel = ReliabilityConfig(mode="selective_repeat")
    scenario = ScenarioConfig(schedule=("random", 17), reliability=rel)
    a = run_case(CASE, scenario)
    b = run_case(CASE, scenario)
    assert a.ok and b.ok
    assert a.fingerprint == b.fingerprint


def test_transport_variants_fingerprint_differently():
    """Sanity: the fingerprint actually distinguishes the planes (same
    schedule, same messages — different copy accounting)."""
    scenario = ScenarioConfig(schedule=("random", 13))
    wwi = run_case(FuzzCase(messages=10, transport="wwi"), scenario)
    rdv = run_case(FuzzCase(messages=10, transport="eager_rendezvous"), scenario)
    assert wwi.ok and rdv.ok
    assert wwi.fingerprint != rdv.fingerprint


def test_transport_survives_counterexample_round_trip():
    base = ScenarioConfig(max_events=10)
    report = run_fuzz([5], FuzzCase(messages=12, transport="eager_rendezvous"), base)
    assert not report.ok
    ce = report.failures[0]
    assert ce.fuzz_case["transport"] == "eager_rendezvous"
    assert FuzzCase.from_dict(ce.fuzz_case).transport == "eager_rendezvous"
