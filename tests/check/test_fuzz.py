"""Schedule-permutation fuzzer: determinism and FIFO-identity guarantees."""

from __future__ import annotations

from repro.check import FuzzCase, run_case, run_fuzz
from repro.config import ScenarioConfig

CASE = FuzzCase(messages=12)


def test_same_seed_is_bit_deterministic():
    scenario = ScenarioConfig(schedule=("random", 7))
    a = run_case(CASE, scenario)
    b = run_case(CASE, scenario)
    assert a.ok and b.ok
    assert a.fingerprint == b.fingerprint


def test_fifo_policy_is_byte_identical_to_unfuzzed():
    plain = run_case(CASE, ScenarioConfig())
    fifo = run_case(CASE, ScenarioConfig(schedule=("fifo", 0)))
    assert plain.ok and fifo.ok
    assert plain.fingerprint == fifo.fingerprint


def test_run_fuzz_collects_outcomes_per_seed():
    report = run_fuzz(range(3), CASE)
    assert report.ok
    assert len(report.outcomes) == 3
    assert all(o.ok for o in report.outcomes)
    # the scenario embedded in each outcome records its schedule seed
    seeds = [o.scenario.schedule for o in report.outcomes]
    assert seeds == [("random", 0), ("random", 1), ("random", 2)]


def test_failing_outcome_becomes_replayable_counterexample():
    # an impossible event budget guarantees a RuntimeError from run_blast
    base = ScenarioConfig(max_events=10)
    report = run_fuzz([5], CASE, base)
    assert not report.ok
    ce = report.failures[0]
    assert ce.kind == "fuzz"
    assert ce.scenario["schedule"] == ["random", 5]
    assert ce.fuzz_case["messages"] == CASE.messages


def test_fuzz_case_round_trips():
    case = FuzzCase(messages=7, waitall=True, mode="indirect")
    assert FuzzCase.from_dict(case.to_dict()) == case
