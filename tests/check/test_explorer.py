"""Explicit-state model checker: exhaustion, mutation catching, shrinking."""

from __future__ import annotations

import io

import pytest

from repro.check import (
    Counterexample,
    ExploreScope,
    MUTATIONS,
    World,
    explore,
    replay,
    shrink,
)


def test_default_scope_exhausts_clean():
    result = explore(ExploreScope())
    assert result.ok
    assert not result.truncated
    assert result.violation is None
    assert result.states > 0
    assert result.transitions >= result.states - 1


def test_waitall_scope_exhausts_clean():
    scope = ExploreScope(sends=(3, 2), recvs=((4, True), (1, False)), ring_capacity=2)
    result = explore(scope)
    assert result.ok, result.describe()


@pytest.mark.parametrize("mode", ["direct", "indirect"])
def test_forced_modes_exhaust_clean(mode):
    result = explore(ExploreScope(mode=mode))
    assert result.ok, result.describe()


def test_state_limit_reports_truncation():
    result = explore(ExploreScope(sends=(2, 2, 2)), state_limit=10)
    assert result.truncated
    assert not result.ok


@pytest.mark.parametrize("mutation", sorted(MUTATIONS))
def test_every_mutation_is_caught(mutation):
    result = explore(ExploreScope(mutation=mutation))
    assert result.violation is not None, f"{mutation} not caught"


def test_stale_advert_match_shrinks_to_small_counterexample():
    result = explore(ExploreScope(mutation="stale_advert_match"))
    assert result.violation is not None
    ce = shrink(result)
    assert len(ce.trace) <= 6
    assert ce.kind == "model"
    # the shrunk counterexample replays against a fresh World
    outcome = replay(ce)
    assert outcome.reproduced, outcome.message


def test_counterexample_json_round_trip():
    result = explore(ExploreScope(mutation="stale_advert_match"))
    ce = shrink(result)
    fh = io.StringIO()
    ce.save(fh)
    fh.seek(0)
    back = Counterexample.load(fh)
    assert back == ce
    assert replay(back).reproduced


def test_bfs_counterexample_is_schedule_minimal():
    # BFS explores by depth, so no shorter trace can reach a violation
    result = explore(ExploreScope(mutation="stale_advert_match"))
    depth = len(result.violation.trace)
    for shorter in range(depth):
        pass  # implicit in BFS; assert the shrunk one is no longer than raw
    assert len(shrink(result).trace) <= depth


def test_world_trace_is_deterministic():
    scope = ExploreScope()
    w1, w2 = World(scope), World(scope)
    for _ in range(8):
        acts1, acts2 = w1.enabled_actions(), w2.enabled_actions()
        assert acts1 == acts2
        if not acts1:
            break
        w1.apply(acts1[0])
        w2.apply(acts2[0])
        assert w1.canonical() == w2.canonical()
