"""Trace auditor: round-trips recorded runs and catches doctored ones."""

from __future__ import annotations

import io

import pytest

from repro.apps.blast import BlastConfig, run_blast
from repro.apps.workloads import FixedSizes
from repro.check import audit_csv, audit_events, audit_spans
from repro.config import ScenarioConfig
from repro.simnet import FaultProfile
from repro.trace import ProtocolTracer, TraceEvent, events_from_csv


def _traced_run(scenario: ScenarioConfig, messages: int = 12):
    tb = scenario.build_testbed()
    tracer = ProtocolTracer.attach(tb)
    cfg = BlastConfig(
        total_messages=messages,
        sizes=FixedSizes(48 * 1024),
        outstanding_sends=3,
        outstanding_recvs=3,
    )
    run_blast(cfg, testbed=tb, scenario=scenario)
    return tracer


@pytest.fixture(scope="module")
def clean_events():
    return _traced_run(ScenarioConfig(seed=1)).events


@pytest.fixture(scope="module")
def chaos_events():
    scenario = ScenarioConfig(seed=3, faults=FaultProfile(drop_prob=0.05))
    return _traced_run(scenario).events


def test_clean_run_audits_ok(clean_events):
    report = audit_events(clean_events)
    assert report.ok, report.describe()
    assert report.connections == 2
    assert not audit_spans(clean_events)


def test_chaos_run_audits_ok(chaos_events):
    # drops force RC retransmission below EXS; the protocol record must
    # still satisfy every invariant
    report = audit_events(chaos_events)
    assert report.ok, report.describe()
    assert not audit_spans(chaos_events)


def test_csv_round_trip_preserves_verdict(clean_events):
    tracer = ProtocolTracer()
    tracer.events = list(clean_events)
    fh = io.StringIO()
    tracer.to_csv(fh)
    fh.seek(0)
    report = audit_csv(fh)
    assert report.ok, report.describe()
    fh.seek(0)
    assert not audit_spans(events_from_csv(fh))


def _mutate(events, kind, **changes):
    """Copy of *events* with *changes* applied to the first *kind* event."""
    out, done = [], False
    for e in events:
        if not done and e.kind == kind:
            fields = dict(e.fields)
            fields.update(changes)
            e = TraceEvent(e.time_ns, e.conn, e.host, e.kind,
                           tuple(sorted(fields.items())))
            done = True
        out.append(e)
    assert done, f"no {kind} event to mutate"
    return out


def test_lost_byte_breaks_conservation(clean_events):
    first_deliver = next(e for e in clean_events if e.kind == "deliver" and e.get("nbytes"))
    doctored = _mutate(clean_events, "deliver", nbytes=first_deliver.get("nbytes") - 1)
    report = audit_events(doctored)
    assert any(v.claim == "conservation" for v in report.violations)


def test_odd_phase_advert_breaks_lemma_1(clean_events):
    doctored = _mutate(clean_events, "advert_tx", phase=3)
    report = audit_events(doctored)
    assert any(v.claim == "Lemma 1" for v in report.violations)


def test_overlapping_transfer_breaks_contiguity(clean_events):
    first = next(e for e in clean_events if e.kind in ("direct", "indirect"))
    doctored = _mutate(clean_events, first.kind, seq=first.get("seq") + 1)
    report = audit_events(doctored)
    assert any(v.claim == "stream contiguity" for v in report.violations)


def _append(events, template, **fields):
    """Copy of *events* plus one synthetic event after everything else."""
    t = max(e.time_ns for e in events) + 1_000
    extra = TraceEvent(t, template.conn, template.host, template.kind,
                       tuple(sorted(fields.items())))
    return list(events) + [extra]


def test_second_fin_breaks_fin_uniqueness(clean_events):
    fin = next(e for e in clean_events if e.kind == "fin")
    doctored = _append(clean_events, fin, seq=fin.get("seq"))
    report = audit_events(doctored)
    assert any(v.claim == "FIN uniqueness" for v in report.violations)


def test_delivery_after_eof_breaks_finality(clean_events):
    eof = next(e for e in clean_events if e.kind == "deliver" and e.get("eof"))
    doctored = _append(clean_events, eof, nbytes=10)
    report = audit_events(doctored)
    assert any(v.claim == "EOF finality" for v in report.violations)


@pytest.mark.parametrize("msg_bytes", (4_096, 48 * 1024))
def test_eager_rendezvous_run_audits_ok(msg_bytes):
    """Both classes of the SEND-RECV plane (eager below the threshold,
    rendezvous above) produce records that satisfy contiguity, FIN
    uniqueness, EOF finality, and conservation."""
    scenario = ScenarioConfig(seed=5, transport="eager_rendezvous")
    tb = scenario.build_testbed()
    tracer = ProtocolTracer.attach(tb)
    cfg = BlastConfig(total_messages=8, sizes=FixedSizes(msg_bytes),
                      outstanding_sends=3, outstanding_recvs=3)
    run_blast(cfg, testbed=tb, scenario=scenario)
    report = audit_events(tracer.events)
    assert report.ok, report.describe()
    assert not audit_spans(tracer.events)
