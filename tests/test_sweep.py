"""The parallel sweep runner: ordering, failure propagation, determinism.

The headline guarantee is the last test: a Fig. 12 blast configuration run
serially and through the multiprocessing sweep runner produces bit-identical
simulated results — timings, byte counts, and mode-switch counts.
"""

import dataclasses
import os

import pytest

from repro.apps.blast import BlastConfig, run_blast
from repro.apps.workloads import FixedSizes, KIB
from repro.bench.experiment import SMOKE, run_grid, run_repeated
from repro.bench.profiles import FDR_INFINIBAND
from repro.core import ProtocolMode
from repro.sweep import SweepError, default_seeds, processes_from_env, run_sweep


# module-level workers so they pickle into pool processes
def _double(config, seed):
    return (config * 2, seed)


def _boom_on_two(config, seed):
    if config == 2:
        raise ValueError("exploded on purpose")
    return config


def _fig12_like_config(size=32 * KIB, messages=24):
    """A scaled-down Fig. 12 point (dynamic protocol, recv 4 / send 2)."""
    return BlastConfig(
        total_messages=messages,
        sizes=FixedSizes(size),
        outstanding_sends=2,
        outstanding_recvs=4,
        recv_buffer_bytes=max(size, 4096),
        mode=ProtocolMode.DYNAMIC,
    )


def _blast_fingerprint(result):
    """Every numeric field of a BlastResult, recursively, for exact compare."""
    out = {}
    for f in dataclasses.fields(result):
        v = getattr(result, f.name)
        if dataclasses.is_dataclass(v) and f.name != "config":
            out[f.name] = dataclasses.astuple(v)
        elif isinstance(v, (int, float, list, tuple)):
            out[f.name] = v
    return out


# ---------------------------------------------------------------------------
# run_sweep mechanics
# ---------------------------------------------------------------------------
def test_results_come_back_in_config_order_serial():
    assert run_sweep([3, 1, 2], _double, processes=1) == [(6, 1), (2, 2), (4, 3)]


def test_results_come_back_in_config_order_parallel():
    configs = list(range(20))
    expected = [(c * 2, s) for c, s in zip(configs, default_seeds(20))]
    assert run_sweep(configs, _double, processes=4) == expected


def test_explicit_seeds_are_used():
    assert run_sweep([10, 20], _double, processes=1, seeds=[7, 9]) == [(20, 7), (40, 9)]


def test_seed_config_length_mismatch_rejected():
    with pytest.raises(ValueError, match="2 configs but 3 seeds"):
        run_sweep([1, 2], _double, seeds=[1, 2, 3])


@pytest.mark.parametrize("processes", [1, 3])
def test_failure_propagates_with_context(processes):
    with pytest.raises(SweepError, match="exploded on purpose") as info:
        run_sweep([1, 2, 3], _boom_on_two, processes=processes)
    assert info.value.index == 1
    assert info.value.config == 2
    assert info.value.seed == 2


def test_empty_sweep():
    assert run_sweep([], _double) == []


def test_processes_from_env(monkeypatch):
    monkeypatch.delenv("REPRO_SWEEP_PROCESSES", raising=False)
    assert processes_from_env(default=1) == 1
    monkeypatch.setenv("REPRO_SWEEP_PROCESSES", "3")
    assert processes_from_env() == 3
    monkeypatch.setenv("REPRO_SWEEP_PROCESSES", "auto")
    assert processes_from_env() == (os.cpu_count() or 1)
    monkeypatch.setenv("REPRO_SWEEP_PROCESSES", "nonsense")
    assert processes_from_env(default=2) == 2


# ---------------------------------------------------------------------------
# determinism regression: serial == sweep runner, run to run
# ---------------------------------------------------------------------------
def test_fig12_config_bit_identical_serial_vs_sweep():
    """A Fig. 12 blast config run twice — once serially, once through the
    parallel sweep runner — yields identical simulated timings, byte
    counts, and mode-switch counts (and every other numeric output)."""
    cfg = _fig12_like_config()

    serial = run_repeated(cfg, FDR_INFINIBAND, SMOKE, processes=1)
    swept = run_repeated(cfg, FDR_INFINIBAND, SMOKE, processes=2)

    assert len(serial.runs) == len(swept.runs) == len(SMOKE.seeds)
    for a, b in zip(serial.runs, swept.runs):
        fa, fb = _blast_fingerprint(a), _blast_fingerprint(b)
        assert fa == fb
        # the claims called out in the issue, asserted explicitly:
        assert (a.start_ns, a.end_ns) == (b.start_ns, b.end_ns)
        assert a.total_bytes == b.total_bytes
        assert a.mode_switches == b.mode_switches
    assert serial.throughput_bps == swept.throughput_bps
    assert serial.mode_switches == swept.mode_switches


def test_fig12_config_repeatable_in_process():
    """Same config, same seed, twice in one process: identical results
    (no hidden global state leaks into the simulation)."""
    cfg = _fig12_like_config(messages=16)
    a = run_blast(cfg, FDR_INFINIBAND, seed=3)
    b = run_blast(cfg, FDR_INFINIBAND, seed=3)
    assert _blast_fingerprint(a) == _blast_fingerprint(b)


def test_run_grid_groups_results_per_config():
    cfgs = [_fig12_like_config(messages=12),
            _fig12_like_config(size=8 * KIB, messages=12)]
    aggs = run_grid(cfgs, FDR_INFINIBAND, SMOKE, processes=2)
    assert len(aggs) == 2
    for agg in aggs:
        assert len(agg.runs) == len(SMOKE.seeds)
    # second config has smaller messages -> lower throughput
    assert aggs[1].throughput_bps.mean < aggs[0].throughput_bps.mean
