"""ScenarioConfig: round-trips, validation, and the deprecation shims."""

from __future__ import annotations

import json

import pytest

from repro.apps.blast import BlastConfig, run_blast
from repro.apps.workloads import FixedSizes
from repro.bench.profiles import PROFILES
from repro.config import ScenarioConfig
from repro.simnet import FaultProfile
from repro.simnet.schedule import FifoPolicy, RandomTiebreakPolicy
from repro.testbed import Testbed
from repro.verbs import ReliabilityConfig

CFG = BlastConfig(total_messages=6, sizes=FixedSizes(32 * 1024),
                  outstanding_sends=2, outstanding_recvs=2)


# ---------------------------------------------------------------------------
# the value object
# ---------------------------------------------------------------------------
def test_round_trip_through_json():
    scenario = ScenarioConfig(
        profile="roce-wan",
        seed=11,
        faults=FaultProfile(drop_prob=0.02),
        reliability=ReliabilityConfig(retry_timeout_ns=100_000),
        schedule=("random", 9),
        telemetry=True,
        telemetry_dir="/tmp/somewhere",
        max_events=123,
    )
    back = ScenarioConfig.from_dict(json.loads(json.dumps(scenario.to_dict())))
    assert back == scenario


def test_unknown_profile_rejected():
    with pytest.raises(ValueError, match="unknown profile"):
        ScenarioConfig(profile="infiniband-9000")


def test_bad_schedule_spec_rejected():
    with pytest.raises(ValueError):
        ScenarioConfig(schedule=("lifo", 0))


def test_schedule_policy_resolution():
    assert ScenarioConfig().schedule_policy() is None
    assert isinstance(ScenarioConfig(schedule=("fifo", 0)).schedule_policy(), FifoPolicy)
    policy = ScenarioConfig(schedule=("random", 4)).schedule_policy()
    assert isinstance(policy, RandomTiebreakPolicy)
    assert policy.seed == 4


def test_with_copies_and_overrides():
    base = ScenarioConfig(seed=1)
    derived = base.with_(seed=2, schedule=("random", 3))
    assert derived.seed == 2 and derived.schedule == ("random", 3)
    assert base.seed == 1 and base.schedule is None


def test_unregistered_adhoc_profile_does_not_serialize():
    profile = PROFILES["fdr"]
    import dataclasses

    adhoc = dataclasses.replace(profile, name="adhoc-custom")
    scenario = ScenarioConfig(profile=adhoc)
    assert scenario.resolve_profile() is adhoc
    with pytest.raises(ValueError, match="not registered"):
        scenario.to_dict()


# ---------------------------------------------------------------------------
# the deprecation shims
# ---------------------------------------------------------------------------
def test_testbed_keyword_assembly_warns():
    with pytest.warns(DeprecationWarning, match="ScenarioConfig"):
        Testbed(seed=5)


def test_testbed_from_scenario_does_not_warn(recwarn):
    Testbed.from_scenario(ScenarioConfig(seed=5))
    assert not [w for w in recwarn if issubclass(w.category, DeprecationWarning)]


def test_testbed_rejects_scenario_plus_knobs():
    with pytest.raises(ValueError, match="not both"):
        Testbed(seed=5, scenario=ScenarioConfig())


def test_legacy_testbed_matches_scenario_testbed():
    import warnings

    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        legacy = run_blast(CFG, testbed=Testbed(seed=5))
    modern = run_blast(CFG, scenario=ScenarioConfig(seed=5))
    assert legacy.total_bytes == modern.total_bytes
    assert legacy.end_ns == modern.end_ns


def test_run_blast_legacy_knobs_warn():
    with pytest.warns(DeprecationWarning, match="run_blast"):
        run_blast(CFG, seed=5)


def test_run_blast_scenario_does_not_warn(recwarn):
    run_blast(CFG, scenario=ScenarioConfig(seed=5))
    assert not [w for w in recwarn if issubclass(w.category, DeprecationWarning)]


def test_run_blast_rejects_scenario_plus_knobs():
    with pytest.raises(ValueError):
        run_blast(CFG, seed=5, scenario=ScenarioConfig())


def test_env_var_telemetry_dir_warns_and_writes(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_TELEMETRY_DIR", str(tmp_path / "artifacts"))
    with pytest.warns(DeprecationWarning, match="REPRO_TELEMETRY_DIR"):
        run_blast(CFG, seed=5)
    assert list((tmp_path / "artifacts").glob("*.jsonl"))


def test_scenario_telemetry_dir_writes_without_env(tmp_path):
    scenario = ScenarioConfig(seed=5, telemetry_dir=str(tmp_path / "artifacts"))
    run_blast(CFG, scenario=scenario)
    assert list((tmp_path / "artifacts").glob("*.jsonl"))
