"""Testbed assembly and calibration anchors."""

import pytest

from helpers import run_procs
from repro.bench.profiles import FDR_INFINIBAND, ROCE_10G_WAN
from repro.exs import BlockingSocket
from repro.testbed import Testbed


def test_testbed_wiring():
    tb = Testbed(seed=0)
    assert tb.client_device.peer is tb.server_device
    assert tb.server_device.peer is tb.client_device
    assert tb.client_host.device is tb.client_device
    assert tb.client.host is tb.client_host


def test_fdr_one_way_latency_matches_ib_write_lat():
    """Paper §IV-B1: measured one-way latency for 64-byte messages is
    0.76 microseconds; the calibrated profile must land near it."""
    tb = Testbed(FDR_INFINIBAND)
    # 64 B payload + headers, unloaded wire, plus HCA processing both ends
    lat = tb.link.one_way_latency_ns(64 + 64)
    lat += FDR_INFINIBAND.device.wr_overhead_ns + FDR_INFINIBAND.device.rx_overhead_ns
    assert 600 <= lat <= 950  # within ~25% of 760 ns


def test_wan_testbed_has_48ms_rtt():
    tb = Testbed(ROCE_10G_WAN)
    one_way = tb.link.one_way_latency_ns(0)
    assert 24_000_000 <= one_way <= 24_100_000


def test_determinism_same_seed_same_timeline():
    def run_once():
        tb = Testbed(seed=11)
        out = {}

        def server():
            conn = yield from BlockingSocket.accept_one(tb.server, 4000)
            out["data"] = yield from conn.recv_bytes(10_000)

        def client():
            conn = yield from BlockingSocket.connect(tb.client, 4000)
            yield from conn.send_bytes(b"q" * 10_000)

        run_procs(tb.sim, server(), client())
        return tb.now, out["data"]

    t1, d1 = run_once()
    t2, d2 = run_once()
    assert t1 == t2 and d1 == d2


def test_different_seeds_differ():
    def run_once(seed):
        tb = Testbed(seed=seed)

        def server():
            conn = yield from BlockingSocket.accept_one(tb.server, 4000)
            yield from conn.recv_bytes(10_000)

        def client():
            conn = yield from BlockingSocket.connect(tb.client, 4000)
            yield from conn.send_bytes(b"q" * 10_000)

        run_procs(tb.sim, server(), client())
        return tb.now

    assert run_once(1) != run_once(2)
