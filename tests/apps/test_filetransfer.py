"""Parallel-stream file transfer."""

import pytest

from repro.apps import FileTransferConfig, run_file_transfer
from repro.apps.filetransfer import _pattern
from repro.bench.profiles import ROCE_10G_WAN
from repro.core import ProtocolMode
from repro.exs import ExsSocketOptions


def test_pattern_is_seekable():
    """Slicing the pattern at any offset matches the whole."""
    whole = _pattern(0, 10_000)
    assert _pattern(2_500, 300) == whole[2_500:2_800]
    assert _pattern(9_999, 1) == whole[9_999:]
    assert len(_pattern(7, 0)) == 0


def test_single_stream_real_data_verified():
    cfg = FileTransferConfig(file_bytes=1_000_000, streams=1,
                             chunk_bytes=100_000, outstanding=4, real_data=True)
    r = run_file_transfer(cfg, seed=1)
    assert r.verified is True
    assert r.total_bytes == 1_000_000


def test_multi_stream_real_data_verified():
    cfg = FileTransferConfig(file_bytes=3_000_001, streams=3,
                             chunk_bytes=250_000, outstanding=3, real_data=True)
    r = run_file_transfer(cfg, seed=2)
    assert r.verified is True
    assert r.total_bytes == 3_000_001
    assert len(r.streams) == 3
    # the uneven extent went to the last stream
    assert r.streams[-1].nbytes == 3_000_001 - 2 * 1_000_000


def test_extent_partitioning():
    cfg = FileTransferConfig(file_bytes=100, streams=3)
    extents = [cfg.extent(i) for i in range(3)]
    assert extents == [(0, 33), (33, 33), (66, 34)]
    assert sum(n for _o, n in extents) == 100


def test_synthetic_mode_reports_no_verification():
    cfg = FileTransferConfig(file_bytes=8 << 20, streams=2, outstanding=4)
    r = run_file_transfer(cfg, seed=1)
    assert r.verified is None
    assert r.total_bytes == 8 << 20
    assert r.throughput_bps > 0


def test_more_streams_scale_over_wan():
    """Each stream is window-limited over 48 ms; parallelism multiplies
    the in-flight window (the GridFTP rationale)."""
    def run(streams):
        cfg = FileTransferConfig(
            file_bytes=32 << 20, streams=streams, chunk_bytes=1 << 20,
            outstanding=4, options=ExsSocketOptions(ring_capacity=64 << 20),
        )
        return run_file_transfer(cfg, ROCE_10G_WAN, seed=1)

    one = run(1)
    four = run(4)
    assert four.throughput_bps > 3.0 * one.throughput_bps


def test_invalid_configs_rejected():
    with pytest.raises(ValueError):
        run_file_transfer(FileTransferConfig(file_bytes=2, streams=4))
    with pytest.raises(ValueError):
        run_file_transfer(FileTransferConfig(streams=0))


def test_direct_only_transfer_works():
    cfg = FileTransferConfig(file_bytes=2 << 20, streams=2, chunk_bytes=1 << 18,
                             outstanding=2, mode=ProtocolMode.DIRECT_ONLY,
                             real_data=True)
    r = run_file_transfer(cfg, seed=3)
    assert r.verified is True
