"""Message-size generators: determinism, caps, phases."""

import pytest

from repro.apps.workloads import (
    KIB,
    MIB,
    BimodalSizes,
    ExponentialSizes,
    FixedSizes,
    PhasedSizes,
    UniformSizes,
)


def test_fixed_sizes():
    gen = FixedSizes(4096)
    assert gen.sizes(3) == [4096, 4096, 4096]
    assert gen.mean_hint == 4096
    with pytest.raises(ValueError):
        FixedSizes(0)


def test_exponential_deterministic_per_seed():
    a = ExponentialSizes(seed=7).sizes(100)
    b = ExponentialSizes(seed=7).sizes(100)
    c = ExponentialSizes(seed=8).sizes(100)
    assert a == b
    assert a != c


def test_exponential_respects_cap_and_floor():
    sizes = ExponentialSizes(mean=1 * MIB, maximum=4 * MIB, seed=1).sizes(2000)
    assert all(1 <= s <= 4 * MIB for s in sizes)
    # the mean should be in the right ballpark (capped exponential)
    mean = sum(sizes) / len(sizes)
    assert 0.6 * MIB < mean < 1.4 * MIB


def test_exponential_validation():
    with pytest.raises(ValueError):
        ExponentialSizes(mean=0)


def test_uniform_bounds():
    sizes = UniformSizes(10, 20, seed=2).sizes(500)
    assert all(10 <= s <= 20 for s in sizes)
    with pytest.raises(ValueError):
        UniformSizes(5, 4)


def test_bimodal_mixture():
    sizes = BimodalSizes(64, 1 * MIB, large_fraction=0.25, seed=3).sizes(2000)
    assert set(sizes) == {64, 1 * MIB}
    frac = sizes.count(1 * MIB) / len(sizes)
    assert 0.18 < frac < 0.32
    with pytest.raises(ValueError):
        BimodalSizes(1, 2, large_fraction=1.5)


def test_phased_concatenation():
    gen = PhasedSizes([(FixedSizes(10), 3), (FixedSizes(20), 2)])
    assert gen.sizes(5) == [10, 10, 10, 20, 20]
    assert gen.total_planned == 5
    # drawing beyond a plan cycles (safety property for over-draws)
    assert gen.sizes(7) == [10, 10, 10, 20, 20, 10, 10]
    with pytest.raises(ValueError):
        PhasedSizes([])
