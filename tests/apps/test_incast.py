"""Incast scenario suite: fan-in through the shared sink uplink."""

import json
import os

import pytest

#: the cells kernels tie-break same-instant events by cell key instead of
#: global placement order, so counters that depend on whether an arrival
#: lands before or after a coincident dequeue can legitimately differ from
#: the monolithic wheel (see docs/SIMULATION.md, "ordering contract")
CELLS_ENV = os.environ.get("REPRO_KERNEL", "") in (
    "cells", "decoupled", "cells-lockstep"
)

from repro.apps import IncastConfig, incast_topology, run_incast
from repro.apps.incast import main as incast_main
from repro.config import ScenarioConfig


def _small(**overrides):
    base = dict(senders=4, bytes_per_sender=32 * 1024, message_bytes=8 * 1024)
    base.update(overrides)
    return IncastConfig(**base)


def test_incast_topology_is_a_star_on_the_sink():
    topo = incast_topology(_small(policy="drop", port_queue_bytes=4096))
    assert topo.hosts == ("s0", "s1", "s2", "s3", "sink")
    assert topo.switches == ("switch0",)
    assert topo.switch.policy == "drop"
    assert topo.switch.port_queue_bytes == 4096


def test_config_validation():
    with pytest.raises(ValueError):
        IncastConfig(senders=0)
    with pytest.raises(ValueError):
        IncastConfig(bytes_per_sender=0)
    with pytest.raises(ValueError):
        IncastConfig(connections_per_sender=0)
    assert _small(connections_per_sender=3).total_connections == 12


def test_backpressure_incast_is_lossless():
    result = run_incast(_small(), ScenarioConfig(seed=1))
    assert result.connections == 4
    assert result.total_bytes == 4 * 32 * 1024
    assert result.switch_drops == 0
    assert result.switch_dropped_bytes == 0
    # everything the senders pushed came out of the sink port
    assert result.switch_forwarded_bytes >= result.total_bytes
    assert result.end_ns == max(result.finish_ns)
    assert result.throughput_gbps > 0


@pytest.mark.skipif(
    CELLS_ENV,
    reason="backpressure count is same-instant order sensitive (arrival vs "
           "coincident dequeue); cells kernels order by cell key",
)
def test_congested_uplink_backpressures():
    # tiny queue + big burst: the sink port must hold frames at ingress
    result = run_incast(
        _small(senders=8, port_queue_bytes=8 * 1024, message_bytes=16 * 1024),
        ScenarioConfig(seed=1),
    )
    assert result.switch_backpressured > 0
    assert result.switch_drops == 0
    assert result.sink_port_peak_queue_bytes <= 8 * 1024 + 16 * 1024 + 512


def test_drop_policy_recovers_through_retransmission():
    result = run_incast(
        _small(senders=8, policy="drop", port_queue_bytes=8 * 1024),
        ScenarioConfig(seed=1),
    )
    # the queue tail-dropped, yet every stream completed (RC recovery)
    assert result.switch_drops > 0
    assert result.connections == 8
    assert len(result.finish_ns) == 8


def test_incast_audit_is_clean():
    result = run_incast(_small(), ScenarioConfig(seed=2), audit=True)
    assert result.audit_violations == 0


def test_incast_scales_connections_with_srq_and_shards():
    config = _small(connections_per_sender=4)  # 16 connections
    result = run_incast(
        config, ScenarioConfig(seed=1, srq_depth=256, cq_shards=4))
    assert result.connections == 16
    assert result.srq_min_free is not None
    assert result.srq_min_free >= 0


def test_incast_is_deterministic():
    a = run_incast(_small(), ScenarioConfig(seed=3))
    b = run_incast(_small(), ScenarioConfig(seed=3))
    assert a.end_ns == b.end_ns
    assert a.finish_ns == b.finish_ns
    c = run_incast(_small(), ScenarioConfig(seed=4))
    assert c.end_ns != a.end_ns


def test_incast_rejects_scenario_with_topology():
    sc = ScenarioConfig(topology=incast_topology(_small()))
    with pytest.raises(ValueError, match="derives its topology"):
        run_incast(_small(), sc)


def test_result_to_dict_is_json_ready():
    result = run_incast(_small(), ScenarioConfig(seed=1))
    payload = json.loads(json.dumps(result.to_dict()))
    assert payload["senders"] == 4
    assert payload["connections"] == 4
    assert payload["audit_violations"] == 0


def test_cli_runs_and_prints_json(capsys):
    rc = incast_main([
        "--senders", "4", "--bytes", "16384", "--message-bytes", "8192",
        "--audit",
    ])
    assert rc == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["connections"] == 4
    assert payload["audit_violations"] == 0
