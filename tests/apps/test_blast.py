"""The blast tool: integrity, measurement plumbing, determinism."""

import pytest

from repro.apps import BlastConfig, ExponentialSizes, FixedSizes, run_blast
from repro.bench.profiles import ROCE_10G_LAN
from repro.core import ProtocolMode


def test_blast_moves_every_byte_with_real_data():
    cfg = BlastConfig(
        total_messages=30,
        sizes=ExponentialSizes(mean=20_000, maximum=100_000, seed=5),
        outstanding_sends=3,
        outstanding_recvs=5,
        recv_buffer_bytes=100_000,
        real_data=True,
    )
    r = run_blast(cfg, seed=2, max_events=50_000_000)
    assert r.total_bytes == sum(cfg.sizes.sizes(30))
    assert r.throughput_bps > 0
    assert r.end_ns > r.start_ns


def test_blast_is_deterministic_per_seed():
    cfg = BlastConfig(total_messages=50, sizes=ExponentialSizes(seed=9),
                      outstanding_sends=4, outstanding_recvs=4)
    a = run_blast(cfg, seed=3, max_events=50_000_000)
    b = run_blast(cfg, seed=3, max_events=50_000_000)
    c = run_blast(cfg, seed=4, max_events=50_000_000)
    assert a.throughput_bps == b.throughput_bps
    assert a.end_ns == b.end_ns
    assert a.tx_stats.direct_transfers == b.tx_stats.direct_transfers
    assert (a.throughput_bps, a.end_ns) != (c.throughput_bps, c.end_ns)


def test_blast_stats_exposed():
    cfg = BlastConfig(total_messages=25, sizes=FixedSizes(1 << 16),
                      recv_buffer_bytes=1 << 16)
    r = run_blast(cfg, seed=1, max_events=50_000_000)
    assert r.tx_stats.total_transfers >= 25
    assert 0.0 <= r.direct_ratio <= 1.0
    assert 0.0 <= r.receiver_cpu <= 1.0
    assert 0.0 <= r.sender_cpu <= 1.0
    assert r.throughput_gbps == pytest.approx(r.throughput_bps / 1e9)


def test_blast_on_other_profile():
    cfg = BlastConfig(total_messages=20, sizes=FixedSizes(1 << 16),
                      recv_buffer_bytes=1 << 16)
    r = run_blast(cfg, ROCE_10G_LAN, seed=1, max_events=50_000_000)
    # 10 GbE can never beat its wire rate
    assert r.throughput_bps < 10e9


def test_blast_waitall_mode():
    cfg = BlastConfig(total_messages=10, sizes=FixedSizes(1 << 16),
                      recv_buffer_bytes=1 << 16, waitall=True, real_data=True)
    r = run_blast(cfg, seed=1, max_events=50_000_000)
    assert r.total_bytes == 10 * (1 << 16)


def test_blast_single_message():
    cfg = BlastConfig(total_messages=1, sizes=FixedSizes(4096),
                      recv_buffer_bytes=4096)
    r = run_blast(cfg, seed=1, max_events=10_000_000)
    assert r.total_bytes == 4096
