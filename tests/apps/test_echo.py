"""The echo (ping-pong latency) tool."""

import pytest

from repro.apps import EchoConfig, EchoResult, run_echo
from repro.apps.metrics import percentile
from repro.core import ProtocolMode


def test_echo_basic_run():
    r = run_echo(EchoConfig(iterations=20, message_bytes=64), seed=1)
    assert len(r.rtts_ns) == 20
    assert all(t > 0 for t in r.rtts_ns)
    assert r.min_ns <= r.median_ns <= r.p99_ns
    assert r.half_rtt_us == pytest.approx(r.median_ns / 2000)


def test_echo_warmup_excluded():
    r = run_echo(EchoConfig(iterations=10, warmup=7, message_bytes=64), seed=1)
    assert len(r.rtts_ns) == 10


def test_echo_rtt_grows_with_message_size():
    small = run_echo(EchoConfig(iterations=20, message_bytes=64), seed=1)
    big = run_echo(EchoConfig(iterations=20, message_bytes=1 << 20), seed=1)
    assert big.median_ns > 3 * small.median_ns


def test_echo_small_messages_favor_buffering():
    """Ping-pong posts each receive only after the previous reply, so the
    sender is always ahead — for tiny messages the direct protocol's
    ADVERT wait dominates and buffering is faster."""
    direct = run_echo(EchoConfig(iterations=40, message_bytes=64,
                                 mode=ProtocolMode.DIRECT_ONLY), seed=1)
    indirect = run_echo(EchoConfig(iterations=40, message_bytes=64,
                                   mode=ProtocolMode.INDIRECT_ONLY), seed=1)
    assert indirect.median_ns < direct.median_ns


def test_echo_large_messages_favor_zero_copy():
    direct = run_echo(EchoConfig(iterations=30, message_bytes=1 << 20,
                                 mode=ProtocolMode.DIRECT_ONLY), seed=1)
    indirect = run_echo(EchoConfig(iterations=30, message_bytes=1 << 20,
                                   mode=ProtocolMode.INDIRECT_ONLY), seed=1)
    assert direct.median_ns < indirect.median_ns


def test_echo_dynamic_stays_inside_the_baseline_envelope():
    """Ping-pong never lets the receiver pre-post ahead, so each message is
    a fresh ADVERT race; the dynamic protocol lands between the two forced
    baselines and never meaningfully below the better one's behaviour:
    ~indirect for tiny messages, bounded by the baselines for large."""
    for size, tolerance in ((64, 1.10), (1 << 20, 1.0)):
        results = {
            mode: run_echo(EchoConfig(iterations=30, message_bytes=size, mode=mode), seed=2)
            for mode in ProtocolMode
        }
        dyn = results[ProtocolMode.DYNAMIC].median_ns
        lo = min(results[ProtocolMode.DIRECT_ONLY].median_ns,
                 results[ProtocolMode.INDIRECT_ONLY].median_ns)
        hi = max(results[ProtocolMode.DIRECT_ONLY].median_ns,
                 results[ProtocolMode.INDIRECT_ONLY].median_ns)
        assert 0.9 * lo <= dyn <= tolerance * hi, (size, lo, dyn, hi)


def test_echo_with_real_data_roundtrips():
    r = run_echo(EchoConfig(iterations=5, message_bytes=512, real_data=True), seed=3)
    assert len(r.rtts_ns) == 5


# -- percentile helper --------------------------------------------------
def test_percentile_basics():
    vals = [10, 20, 30, 40]
    assert percentile(vals, 0) == 10
    assert percentile(vals, 100) == 40
    assert percentile(vals, 50) == 25.0
    assert percentile([7], 99) == 7.0


def test_percentile_validation():
    with pytest.raises(ValueError):
        percentile([], 50)
    with pytest.raises(ValueError):
        percentile([1], 101)
