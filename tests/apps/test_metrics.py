"""Throughput equation and confidence intervals."""

import math

import pytest

from repro.apps.metrics import MeanCI, mean_ci, throughput_bps


def test_throughput_equation():
    # 1000 bytes in 1 microsecond = 8 Gb/s (paper equation (1))
    assert throughput_bps(1000, 0, 1000) == pytest.approx(8e9)


def test_throughput_degenerate_window():
    assert throughput_bps(1000, 100, 100) == 0.0
    assert throughput_bps(1000, 200, 100) == 0.0


def test_mean_ci_single_value():
    ci = mean_ci([5.0])
    assert ci.mean == 5.0 and ci.half_width == 0.0 and ci.n == 1


def test_mean_ci_constant_values():
    ci = mean_ci([3.0, 3.0, 3.0])
    assert ci.mean == 3.0 and ci.half_width == 0.0


def test_mean_ci_known_case():
    # n=2: t(0.975, df=1) = 12.706; s = |a-b|/sqrt(2); hw = t*s/sqrt(2)
    ci = mean_ci([0.0, 2.0])
    assert ci.mean == 1.0
    expected = 12.706 * math.sqrt(2.0) / math.sqrt(2)
    assert ci.half_width == pytest.approx(expected)
    assert ci.lo == pytest.approx(1.0 - expected)
    assert ci.hi == pytest.approx(1.0 + expected)


def test_mean_ci_shrinks_with_n():
    wide = mean_ci([1.0, 2.0])
    narrow = mean_ci([1.0, 2.0] * 10)
    assert narrow.half_width < wide.half_width


def test_mean_ci_empty_rejected():
    with pytest.raises(ValueError):
        mean_ci([])


def test_mean_ci_str():
    assert "±" in str(mean_ci([1.0, 2.0]))
