"""The ES-API style free functions (exs_*)."""

import pytest

from helpers import run_procs
from repro.exs import (
    ExsEventType,
    MsgFlags,
    SocketType,
    exs_accept,
    exs_bind_listen,
    exs_close,
    exs_connect,
    exs_mderegister,
    exs_mregister,
    exs_qcreate,
    exs_qdequeue,
    exs_recv,
    exs_send,
    exs_socket,
)


def test_full_exchange_via_free_functions(testbed):
    out = {}

    def server():
        stack = testbed.server
        lsock = exs_socket(stack)
        exs_bind_listen(lsock, 4700)
        eq = exs_qcreate(stack)
        exs_accept(lsock, eq, context="listener")
        ev = yield exs_qdequeue(eq)
        assert ev.kind is ExsEventType.ACCEPT and ev.context == "listener"
        sock = ev.socket
        buf = stack.alloc(128)
        mr = yield from exs_mregister(stack, buf)
        exs_recv(sock, buf, mr, 128, eq, flags=MsgFlags.MSG_WAITALL, context="r1")
        ev = yield exs_qdequeue(eq)
        assert ev.kind is ExsEventType.RECV and ev.context == "r1"
        out["data"] = buf.read(0, ev.nbytes)
        exs_mderegister(stack, mr)

    def client():
        stack = testbed.client
        sock = exs_socket(stack, SocketType.SOCK_STREAM)
        eq = exs_qcreate(stack)
        buf = stack.alloc(128)
        buf.fill(b"E" * 128)
        mr = yield from exs_mregister(stack, buf)
        exs_connect(sock, 4700, eq)
        ev = yield exs_qdequeue(eq)
        assert ev.kind is ExsEventType.CONNECT
        exs_send(sock, buf, mr, 128, eq, context="s1")
        ev = yield exs_qdequeue(eq)
        assert ev.kind is ExsEventType.SEND and ev.context == "s1"
        exs_close(sock, eq)
        ev = yield exs_qdequeue(eq)
        assert ev.kind is ExsEventType.CLOSE

    run_procs(testbed.sim, server(), client(), max_events=10_000_000)
    assert out["data"] == b"E" * 128


def test_connect_refused_posts_error_event(testbed):
    def client():
        stack = testbed.client
        sock = exs_socket(stack)
        eq = exs_qcreate(stack)
        exs_connect(sock, 9999, eq)  # nobody listening... and no listener at all
        ev = yield exs_qdequeue(eq)
        return ev

    # no listener anywhere: the CM rejects at the peer
    testbed.server.cm.listen(1)  # ensure the CM handler exists on the peer
    (ev,) = run_procs(testbed.sim, client(), max_events=1_000_000)
    assert ev.kind is ExsEventType.ERROR
    assert "refused" in ev.error


def test_mregister_costs_time(testbed):
    stack = testbed.client

    def proc():
        buf = stack.alloc(1 << 20)
        before = testbed.now
        _mr = yield from exs_mregister(stack, buf)
        return testbed.now - before

    (elapsed,) = run_procs(testbed.sim, proc())
    assert elapsed >= stack.mregister_base_ns
