"""Connection shutdown semantics and error paths."""

import os

import pytest

from helpers import run_procs
from repro.exs import BlockingSocket, ExsEventType, ExsSocketOptions
from repro.testbed import Testbed


def test_close_flushes_pending_sends_first():
    """exs_close is graceful: everything submitted before it arrives."""
    tb = Testbed(seed=11)
    payload = os.urandom(250_000)
    out = {}

    def server():
        conn = yield from BlockingSocket.accept_one(tb.server, 5100)
        got = b""
        while True:
            d = yield from conn.recv_bytes(40_000)
            if d == b"":
                break
            got += d
        out["got"] = got

    def client():
        stack = tb.client
        sock = stack.socket()
        eq = stack.qcreate()
        buf = stack.alloc(len(payload))
        buf.fill(payload)
        mr = yield from stack.mregister(buf)
        sock.connect(5100, eq)
        ev = yield eq.dequeue()
        assert ev.kind is ExsEventType.CONNECT
        # submit everything and close IMMEDIATELY, before any completion
        for off in range(0, len(payload), 50_000):
            sock.send(buf, mr, 50_000, eq, offset=off)
        sock.close(eq)
        kinds = []
        for _ in range(len(payload) // 50_000 + 1):
            ev = yield eq.dequeue()
            kinds.append(ev.kind)
        assert kinds.count(ExsEventType.SEND) == 5
        assert kinds[-1] is ExsEventType.CLOSE  # close completes last

    run_procs(tb.sim, server(), client(), max_events=50_000_000)
    assert out["got"] == payload


def test_simultaneous_close_both_directions():
    tb = Testbed(seed=12)
    out = {}

    def side(role, stack, port):
        if role == "server":
            conn = yield from BlockingSocket.accept_one(stack, port)
        else:
            conn = yield from BlockingSocket.connect(stack, port)
        yield from conn.send_bytes(role.encode())
        peer = yield from conn.recv_bytes(64)
        yield from conn.close()
        eof = yield from conn.recv_bytes(64)
        out[role] = (peer, eof)

    run_procs(
        tb.sim,
        side("server", tb.server, 5101),
        side("client", tb.client, 5101),
        max_events=50_000_000,
    )
    assert out["server"] == (b"client", b"")
    assert out["client"] == (b"server", b"")


def test_send_after_close_rejected():
    tb = Testbed(seed=13)

    def client():
        conn = yield from BlockingSocket.connect(tb.client, 5102)
        yield from conn.close()
        with pytest.raises(RuntimeError, match="after close"):
            yield from conn.send_bytes(b"too late")
        return True

    def server():
        conn = yield from BlockingSocket.accept_one(tb.server, 5102)
        eof = yield from conn.recv_bytes(10)
        assert eof == b""

    run_procs(tb.sim, server(), client(), max_events=20_000_000)


def test_receiver_keeps_draining_after_peer_close():
    """Data queued behind the FIN is all delivered before EOF is seen."""
    tb = Testbed(seed=14)
    options = ExsSocketOptions(ring_capacity=8 * 1024)  # force buffering
    payload = os.urandom(60_000)
    out = {}

    def server():
        conn = yield from BlockingSocket.accept_one(tb.server, 5103, options=options)
        # sleep long enough for the sender to finish and close before the
        # receiver posts its first receive
        yield tb.sim.timeout(3_000_000)
        got = b""
        while True:
            d = yield from conn.recv_bytes(7_000)
            if d == b"":
                break
            got += d
        out["got"] = got

    def client():
        conn = yield from BlockingSocket.connect(tb.client, 5103, options=options)
        yield from conn.send_bytes(payload)
        yield from conn.close()

    run_procs(tb.sim, server(), client(), max_events=100_000_000)
    assert out["got"] == payload


def test_engine_failure_surfaces_loudly():
    """A corrupted protocol state must crash the run, not hang it."""
    tb = Testbed(seed=15)

    def server():
        conn = yield from BlockingSocket.accept_one(tb.server, 5104)
        # sabotage: violate ring accounting from the outside
        conn.sock.conn.rx.algo.ring.stored = -5
        out = yield from conn.recv_bytes(100)

    def client():
        conn = yield from BlockingSocket.connect(tb.client, 5104)
        yield from conn.send_bytes(b"x" * 100_000)

    tb.sim.process(server())
    tb.sim.process(client())
    with pytest.raises(Exception):
        tb.run(max_events=20_000_000)


def test_fin_is_idempotent_but_conflicts_are_fatal():
    """A FIN replayed by the reliability layer (or the dup fault) after the
    stream finished is a no-op; a FIN with a *different* final sequence is a
    protocol bug and must trip the safety layer."""
    from repro.core import SafetyViolation

    tb = Testbed(seed=31)
    out = {}

    def server():
        conn = yield from BlockingSocket.accept_one(tb.server, 5140)
        while (yield from conn.recv_bytes(4096)) != b"":
            pass
        out["rx"] = conn.sock.conn.rx

    def client():
        conn = yield from BlockingSocket.connect(tb.client, 5140)
        yield from conn.send_bytes(b"q" * 10_000)
        yield from conn.close()

    run_procs(tb.sim, server(), client(), max_events=50_000_000)
    rx = out["rx"]
    fin_seq = rx.eof_seq
    assert fin_seq == 10_000
    rx.on_fin(fin_seq)  # replayed FIN: silently ignored
    assert rx.eof_seq == fin_seq
    with pytest.raises(SafetyViolation):
        rx.on_fin(fin_seq + 1)  # conflicting FIN: impossible state
