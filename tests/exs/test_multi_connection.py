"""Multiple concurrent connections sharing hosts, devices, and the link."""

import os

import pytest

from helpers import run_procs
from repro.exs import BlockingSocket, ExsEventType, ExsSocketOptions
from repro.testbed import Testbed


def test_two_streams_share_the_fabric():
    tb = Testbed(seed=6)
    payloads = {p: os.urandom(120_000) for p in (4801, 4802)}
    got = {}

    def server(port):
        conn = yield from BlockingSocket.accept_one(tb.server, port)
        data = b""
        while len(data) < len(payloads[port]):
            chunk = yield from conn.recv_bytes(32768)
            assert chunk
            data += chunk
        got[port] = data

    def client(port):
        conn = yield from BlockingSocket.connect(tb.client, port)
        yield from conn.send_bytes(payloads[port])

    run_procs(
        tb.sim,
        server(4801), server(4802), client(4801), client(4802),
        max_events=50_000_000,
    )
    assert got[4801] == payloads[4801]
    assert got[4802] == payloads[4802]


def test_opposite_direction_connections():
    """A connection from each side simultaneously; streams stay separate."""
    tb = Testbed(seed=7)
    out = {}

    def a_to_b_server():
        conn = yield from BlockingSocket.accept_one(tb.server, 4803)
        out["ab"] = yield from conn.recv_bytes(1000, waitall=True)

    def a_to_b_client():
        conn = yield from BlockingSocket.connect(tb.client, 4803)
        yield from conn.send_bytes(b"A" * 1000)

    def b_to_a_server():
        conn = yield from BlockingSocket.accept_one(tb.client, 4804)
        out["ba"] = yield from conn.recv_bytes(1000, waitall=True)

    def b_to_a_client():
        conn = yield from BlockingSocket.connect(tb.server, 4804)
        yield from conn.send_bytes(b"B" * 1000)

    run_procs(
        tb.sim,
        a_to_b_server(), a_to_b_client(), b_to_a_server(), b_to_a_client(),
        max_events=50_000_000,
    )
    assert out["ab"] == b"A" * 1000
    assert out["ba"] == b"B" * 1000


def test_connections_with_different_options_coexist():
    tb = Testbed(seed=8)
    opts1 = ExsSocketOptions(ring_capacity=64 * 1024)
    opts2 = ExsSocketOptions(ring_capacity=1 << 20, native_write_with_imm=False)
    payload = os.urandom(80_000)
    got = {}

    def server(port, opts):
        conn = yield from BlockingSocket.accept_one(tb.server, port, options=opts)
        data = b""
        while len(data) < len(payload):
            data += yield from conn.recv_bytes(20_000)
        got[port] = data

    def client(port, opts):
        conn = yield from BlockingSocket.connect(tb.client, port, options=opts)
        yield from conn.send_bytes(payload)

    run_procs(
        tb.sim,
        server(4805, opts1), server(4806, opts2),
        client(4805, opts1), client(4806, opts2),
        max_events=50_000_000,
    )
    assert got[4805] == payload and got[4806] == payload


def test_heavy_bidirectional_traffic_on_one_connection():
    """Full-duplex stress: both directions stream simultaneously with the
    dynamic protocol; each direction keeps its own phases/ring/adverts.
    Each pumping process uses its own event queue (the asynchronous API
    allows any number of queues per socket)."""
    tb = Testbed(seed=9)
    options = ExsSocketOptions(ring_capacity=128 * 1024)
    a_payload = os.urandom(200_000)
    b_payload = os.urandom(160_000)
    got = {}

    def pump_send(stack, sock, payload):
        eq = stack.qcreate()
        buf = stack.alloc(len(payload))
        buf.fill(payload)
        mr = yield from stack.mregister(buf)
        step = 25_000
        for off in range(0, len(payload), step):
            n = min(step, len(payload) - off)
            sock.send(buf, mr, n, eq, offset=off)
            ev = yield eq.dequeue()
            assert ev.kind is ExsEventType.SEND

    def pump_recv(stack, sock, total):
        eq = stack.qcreate()
        buf = stack.alloc(total)
        mr = yield from stack.mregister(buf)
        received = 0
        while received < total:
            sock.recv(buf, mr, min(30_000, total - received), eq, offset=received)
            ev = yield eq.dequeue()
            assert ev.kind is ExsEventType.RECV and ev.nbytes > 0
            received += ev.nbytes
        return buf.read(0, total)

    def server():
        conn = yield from BlockingSocket.accept_one(tb.server, 4807, options=options)
        sock = conn.sock
        send_proc = tb.sim.process(pump_send(tb.server, sock, b_payload), name="srv-send")
        got["at_server"] = yield from pump_recv(tb.server, sock, len(a_payload))
        yield send_proc

    def client():
        conn = yield from BlockingSocket.connect(tb.client, 4807, options=options)
        sock = conn.sock
        send_proc = tb.sim.process(pump_send(tb.client, sock, a_payload), name="cli-send")
        got["at_client"] = yield from pump_recv(tb.client, sock, len(b_payload))
        yield send_proc

    run_procs(tb.sim, server(), client(), max_events=100_000_000)
    assert got["at_server"] == a_payload
    assert got["at_client"] == b_payload
