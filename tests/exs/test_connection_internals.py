"""Connection internals: credit flow, receive-pool recycling, hello."""

import os

import pytest

from helpers import run_procs
from repro.core import ProtocolMode
from repro.exs import BlockingSocket, ExsSocketOptions, SocketType
from repro.testbed import Testbed


def run_exchange(options, nbytes=100_000, seed=21):
    tb = Testbed(seed=seed)
    out = {}

    def server():
        conn = yield from BlockingSocket.accept_one(tb.server, 5200, options=options)
        got = b""
        while len(got) < nbytes:
            d = yield from conn.recv_bytes(20_000)
            assert d
            got += d
        out["server_conn"] = conn.sock.conn
        out["got"] = got

    def client():
        conn = yield from BlockingSocket.connect(tb.client, 5200, options=options)
        yield from conn.send_bytes(b"k" * nbytes)
        out["client_conn"] = conn.sock.conn

    run_procs(tb.sim, server(), client(), max_events=50_000_000)
    return out


def test_recv_pool_is_recycled_not_drained():
    """Every consumed RECV is reposted: the pool never shrinks."""
    opts = ExsSocketOptions(credits=32, ring_capacity=16 * 1024)
    out = run_exchange(opts)
    for side in ("server_conn", "client_conn"):
        conn = out[side]
        assert conn.qp.recv_queue_depth == opts.credits


def test_credit_conservation_end_to_end():
    """consumed == messages that consumed a peer RECV; grants cover them."""
    opts = ExsSocketOptions(credits=16, ring_capacity=8 * 1024)
    out = run_exchange(opts)
    for side in ("server_conn", "client_conn"):
        cm = out[side].credits
        assert cm.available >= 0
        assert cm.consumed_total <= cm.initial_remote + cm.peer_repost_cum
        # the peer's grant can never exceed what we actually sent
        assert cm.peer_repost_cum <= cm.consumed_total


def test_hello_carries_ring_and_credits():
    tb = Testbed(seed=22)
    opts = ExsSocketOptions(credits=48, ring_capacity=123_456)
    out = {}

    def server():
        conn = yield from BlockingSocket.accept_one(tb.server, 5201, options=opts)
        out["hello"] = conn.sock.conn.hello()
        out["peer"] = conn.sock.peer_hello

    def client():
        conn = yield from BlockingSocket.connect(tb.client, 5201, options=opts)
        out["client_peer"] = conn.sock.peer_hello

    run_procs(tb.sim, server(), client(), max_events=10_000_000)
    hello = out["hello"]
    assert hello["credits"] == 48
    assert hello["ring_capacity"] == 123_456
    assert hello["mode"] == "dynamic"
    assert hello["socket_type"] == "stream"
    # what the client learned matches what the server advertises
    assert out["client_peer"]["ring_capacity"] == 123_456
    # and the server learned the client's hello via the REQ
    assert out["peer"]["credits"] == 48


def test_seqpacket_ignores_sender_copy():
    """sender_copy is a stream-semantics option; SOCK_SEQPACKET keeps its
    one-message-one-transfer behaviour."""
    tb = Testbed(seed=23)
    opts = ExsSocketOptions(sender_copy=True)
    out = {}

    def server():
        conn = yield from BlockingSocket.accept_one(
            tb.server, 5202, SocketType.SOCK_SEQPACKET, opts
        )
        out["msg"] = yield from conn.recv_bytes(256)

    def client():
        conn = yield from BlockingSocket.connect(
            tb.client, 5202, SocketType.SOCK_SEQPACKET, opts
        )
        yield from conn.send_bytes(b"seqpacket-msg")

    run_procs(tb.sim, server(), client(), max_events=10_000_000)
    assert out["msg"] == b"seqpacket-msg"


def test_stats_are_per_direction():
    opts = ExsSocketOptions()
    out = run_exchange(opts)
    client_conn, server_conn = out["client_conn"], out["server_conn"]
    # the client only sent: its rx stats are empty, tx stats busy
    assert client_conn.tx_stats.total_transfers > 0
    assert client_conn.rx_stats.total_transfers == 0
    # the server only received: adverts/copies live on its rx side
    assert server_conn.rx_stats.adverts_sent + server_conn.rx_stats.adverts_suppressed > 0
    assert server_conn.tx_stats.total_transfers == 0
