"""The three protocol variants end to end, with real data and statistics."""

import os

import pytest

from repro.apps import BlastConfig, FixedSizes, run_blast
from repro.core import ProtocolMode


def blast(mode, *, sends=4, recvs=4, messages=40, size=64 * 1024, seed=2, **kw):
    cfg = BlastConfig(
        total_messages=messages,
        sizes=FixedSizes(size),
        outstanding_sends=sends,
        outstanding_recvs=recvs,
        recv_buffer_bytes=size,
        mode=mode,
        real_data=True,
        **kw,
    )
    return run_blast(cfg, seed=seed, max_events=50_000_000)


def test_direct_only_never_touches_the_ring():
    r = blast(ProtocolMode.DIRECT_ONLY)
    assert r.tx_stats.indirect_transfers == 0
    assert r.tx_stats.direct_ratio == 1.0
    assert r.rx_stats.copies == 0
    assert r.rx_stats.adverts_sent >= r.config.total_messages


def test_indirect_only_never_advertises():
    r = blast(ProtocolMode.INDIRECT_ONLY)
    assert r.tx_stats.direct_transfers == 0
    assert r.rx_stats.adverts_sent == 0
    assert r.rx_stats.copies > 0
    assert r.rx_stats.copied_bytes == r.total_bytes


def test_dynamic_transfers_all_bytes_either_way():
    r = blast(ProtocolMode.DYNAMIC)
    tx = r.tx_stats
    assert tx.direct_bytes + tx.indirect_bytes == r.total_bytes
    # whatever went indirect must have been copied out at the receiver
    assert r.rx_stats.copied_bytes == tx.indirect_bytes


def test_direct_beats_indirect_on_fdr():
    """The headline LAN result: zero-copy wins when the wire outruns memcpy."""
    direct = blast(ProtocolMode.DIRECT_ONLY, size=1 << 20, messages=30)
    indirect = blast(ProtocolMode.INDIRECT_ONLY, size=1 << 20, messages=30)
    assert direct.throughput_bps > 1.4 * indirect.throughput_bps


def test_indirect_burns_receiver_cpu():
    direct = blast(ProtocolMode.DIRECT_ONLY, size=1 << 20, messages=30)
    indirect = blast(ProtocolMode.INDIRECT_ONLY, size=1 << 20, messages=30)
    assert indirect.receiver_cpu > 0.5
    assert direct.receiver_cpu < 0.2


def test_dynamic_with_receive_headroom_goes_direct():
    r = blast(ProtocolMode.DYNAMIC, sends=2, recvs=8, size=1 << 20, messages=40)
    assert r.direct_ratio > 0.9
    assert r.rx_stats.copies <= 2


def test_dynamic_with_equal_outstanding_goes_indirect():
    r = blast(ProtocolMode.DYNAMIC, sends=4, recvs=4, size=1 << 20, messages=40)
    assert r.direct_ratio < 0.3
    assert r.mode_switches >= 1


def test_waitall_blast_delivers_full_buffers():
    cfg_size = 256 * 1024
    r = blast(ProtocolMode.DYNAMIC, size=cfg_size, messages=20, waitall=True)
    # each completed recv carried exactly one full buffer
    assert r.total_bytes == 20 * cfg_size


def test_time_per_message_consistent():
    r = blast(ProtocolMode.DIRECT_ONLY, messages=20)
    span = r.end_ns - r.start_ns
    assert r.time_per_message_ns == pytest.approx(span / 20)
