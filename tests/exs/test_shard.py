"""CQ sharding: shared completion vectors servicing many connections."""

from helpers import run_procs
from repro.config import ScenarioConfig
from repro.exs import BlockingSocket
from repro.fabric import Fabric
from repro.simnet import FaultProfile, Topology
from repro.verbs import ReliabilityConfig


def _pingpong(fab, port, nbytes, a="client", b="server", out=None, key=None):
    def server():
        conn = yield from BlockingSocket.accept_one(fab.stack(b), port)
        data = yield from conn.recv_bytes(nbytes, waitall=True)
        if out is not None:
            out[key] = data

    def client():
        conn = yield from BlockingSocket.connect(fab.stack(a), port, to=b)
        yield from conn.send_bytes(bytes([port % 251]) * nbytes)

    return server(), client()


def test_connections_are_assigned_round_robin():
    fab = Fabric(topology=Topology.point_to_point(), seed=2, cq_shards=2)
    pairs = [fab.connect("client", "server") for _ in range(4)]
    fab.run()
    assert all(p.established.triggered for p in pairs)
    for name in ("client", "server"):
        shards = fab.stack(name).shards
        assert len(shards) == 2
        assert [len(s.conns) for s in shards] == [2, 2]
        # every registered connection shares its shard's channel and CQ
        for shard in shards:
            for conn in shard.conns.values():
                assert conn.cq is shard.cq
                assert conn.channel is shard.channel


def test_sharded_transfers_deliver_correct_data():
    fab = Fabric(topology=Topology.point_to_point(), seed=5, cq_shards=3)
    out = {}
    procs = []
    for i in range(5):
        procs.extend(_pingpong(fab, 6000 + i, 10_000, out=out, key=i))
    run_procs(fab.sim, *procs)
    for i in range(5):
        assert out[i] == bytes([(6000 + i) % 251]) * 10_000
    shards = fab.stack("server").shards
    assert sum(s.wcs_dispatched for s in shards) > 0
    assert sum(s.rounds for s in shards) > 0


def test_srq_and_shards_compose():
    fab = Fabric(topology=Topology.point_to_point(), seed=5,
                 srq_depth=64, cq_shards=2)
    out = {}
    procs = []
    for i in range(4):
        procs.extend(_pingpong(fab, 6100 + i, 12_000, out=out, key=i))
    run_procs(fab.sim, *procs)
    for i in range(4):
        assert out[i] == bytes([(6100 + i) % 251]) * 12_000
    assert fab.stack("server").srq_pool.attached == 4


def test_sharded_runs_are_deterministic():
    def once():
        fab = Fabric(topology=Topology.point_to_point(), seed=8,
                     srq_depth=32, cq_shards=2)
        procs = []
        for i in range(3):
            procs.extend(_pingpong(fab, 6200 + i, 8_000))
        run_procs(fab.sim, *procs)
        return fab.now, fab.sim.calendar_stats()["events_executed"]

    assert once() == once()


def test_failing_connection_does_not_break_shard_siblings():
    """A dead wire kills its connection; the shard keeps serving others."""
    fab = Fabric(
        topology=Topology.star(["a", "b", "c"]), seed=3, cq_shards=1,
        faults={"a-switch0": FaultProfile(drop_prob=1.0)},
        reliability=ReliabilityConfig(
            retry_timeout_ns=50_000, retry_cnt=1, rnr_retry=1),
    )
    out = {}

    def recv_good():
        conn = yield from BlockingSocket.accept_one(fab.stack("c"), 7001)
        out["good"] = yield from conn.recv_bytes(20_000, waitall=True)

    def send_good():
        conn = yield from BlockingSocket.connect(fab.stack("b"), 7001, to="c")
        yield from conn.send_bytes(b"g" * 20_000)

    def recv_dead():
        try:
            conn = yield from BlockingSocket.accept_one(fab.stack("c"), 7002)
            out["dead"] = yield from conn.recv_bytes(20_000, waitall=True)
        except Exception as exc:
            out["dead_recv_err"] = exc

    def send_dead():
        try:
            conn = yield from BlockingSocket.connect(fab.stack("a"), 7002, to="c")
            yield from conn.send_bytes(b"x" * 20_000)
        except Exception as exc:
            out["dead_send_err"] = exc

    for i, gen in enumerate((recv_good(), send_good(), recv_dead(), send_dead())):
        fab.sim.process(gen, name=f"proc{i}")
    fab.run(max_events=20_000_000)

    # the healthy stream on the same sink shard completed untouched
    assert out.get("good") == b"g" * 20_000
    # the starved stream never delivered its payload
    assert "dead" not in out
