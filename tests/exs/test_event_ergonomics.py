"""ExsEvent.expect() and the BlockingSocket context manager."""

from __future__ import annotations

import pytest
from helpers import run_procs

from repro.config import ScenarioConfig
from repro.exs import BlockingSocket, ExsError, ExsEventType
from repro.exs.eventqueue import ExsEvent
from repro.testbed import Testbed

PORT = 4600


@pytest.fixture
def tb() -> Testbed:
    return Testbed.from_scenario(ScenarioConfig(seed=2))


# ---------------------------------------------------------------------------
# ExsEvent.expect
# ---------------------------------------------------------------------------
def test_expect_returns_self_on_match():
    ev = ExsEvent(kind=ExsEventType.SEND, socket=None, nbytes=10)
    assert ev.expect(ExsEventType.SEND) is ev


def test_expect_raises_on_kind_mismatch():
    ev = ExsEvent(kind=ExsEventType.CLOSE, socket=None)
    with pytest.raises(ExsError, match="expected send completion, got close"):
        ev.expect(ExsEventType.SEND)


def test_expect_raises_on_error_event():
    ev = ExsEvent(kind=ExsEventType.RECV, socket=None, error="boom")
    with pytest.raises(ExsError, match="boom"):
        ev.expect(ExsEventType.RECV)


# ---------------------------------------------------------------------------
# BlockingSocket as a context manager
# ---------------------------------------------------------------------------
def test_with_block_closes_and_server_sees_eof(tb):
    out = {}

    def server():
        conn = yield from BlockingSocket.accept_one(tb.server, PORT)
        out["data"] = yield from conn.recv_bytes(64)
        out["eof"] = (yield from conn.recv_bytes(64)) == b""

    def client():
        conn = yield from BlockingSocket.connect(tb.client, PORT)
        with conn:
            yield from conn.send_bytes(b"payload")
        assert conn._closed

    run_procs(tb.sim, server(), client())
    assert out["data"] == b"payload"
    assert out["eof"], "with-block exit must close the stream (server EOF)"


def test_close_is_idempotent_after_with(tb):
    out = {}

    def server():
        conn = yield from BlockingSocket.accept_one(tb.server, PORT)
        out["eof"] = (yield from conn.recv_bytes(64)) == b""

    def client():
        conn = yield from BlockingSocket.connect(tb.client, PORT)
        with conn:
            pass
        # explicit close after the with-block must be a clean no-op
        yield from conn.close()

    run_procs(tb.sim, server(), client())
    assert out["eof"]


def test_explicit_close_still_waits_for_completion(tb):
    def server():
        conn = yield from BlockingSocket.accept_one(tb.server, PORT)
        yield from conn.recv_bytes(64)

    def client():
        conn = yield from BlockingSocket.connect(tb.client, PORT)
        yield from conn.close()
        assert conn._closed

    run_procs(tb.sim, server(), client())
