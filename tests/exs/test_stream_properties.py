"""Property-based end-to-end stream tests over the full simulated stack.

Where ``tests/core/test_safety_properties.py`` model-checks the pure
algorithm, these drive the *whole* system — verbs transport, credits,
engine scheduling, copies, EOF — with hypothesis-chosen workloads and
real bytes, asserting only the externally visible contract: the receiver
reads exactly the bytes the sender wrote, in order, for any chunking.
"""

import hashlib

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from helpers import run_procs
from repro.exs import BlockingSocket, ExsSocketOptions, SocketType
from repro.testbed import Testbed


def stream_case(send_sizes, recv_size, ring_capacity, waitall, seed):
    tb = Testbed(seed=seed)
    options = ExsSocketOptions(ring_capacity=ring_capacity)
    total = sum(send_sizes)
    # deterministic, position-dependent payload so any reorder/dup shows up
    payload = bytes((i * 131 + 7) % 256 for i in range(total))
    out = {}

    def server():
        conn = yield from BlockingSocket.accept_one(tb.server, 4950, options=options)
        got = b""
        while len(got) < total:
            chunk = yield from conn.recv_bytes(
                min(recv_size, total - len(got)) if waitall else recv_size,
                waitall=waitall,
            )
            assert chunk != b"", f"premature EOF at {len(got)}/{total}"
            got += chunk
        out["got"] = got

    def client():
        conn = yield from BlockingSocket.connect(tb.client, 4950, options=options)
        off = 0
        for n in send_sizes:
            yield from conn.send_bytes(payload[off : off + n])
            off += n
        yield from conn.close()

    run_procs(tb.sim, server(), client(), max_events=100_000_000)
    assert out["got"] == payload


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    send_sizes=st.lists(st.integers(1, 5000), min_size=1, max_size=12),
    recv_size=st.integers(1, 6000),
    ring_capacity=st.integers(512, 32768),
    waitall=st.booleans(),
    seed=st.integers(0, 1000),
)
def test_stream_integrity_for_any_chunking(send_sizes, recv_size, ring_capacity, waitall, seed):
    stream_case(send_sizes, recv_size, ring_capacity, waitall, seed)


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    send_sizes=st.lists(st.integers(1, 2000), min_size=1, max_size=8),
    seed=st.integers(0, 100),
)
def test_stream_integrity_with_iwarp_emulation(send_sizes, seed):
    tb = Testbed(seed=seed)
    options = ExsSocketOptions(ring_capacity=4096, native_write_with_imm=False)
    total = sum(send_sizes)
    payload = bytes((i * 29 + 3) % 256 for i in range(total))
    out = {}

    def server():
        conn = yield from BlockingSocket.accept_one(tb.server, 4951, options=options)
        got = b""
        while len(got) < total:
            chunk = yield from conn.recv_bytes(1500)
            assert chunk != b""
            got += chunk
        out["got"] = got

    def client():
        conn = yield from BlockingSocket.connect(tb.client, 4951, options=options)
        off = 0
        for n in send_sizes:
            yield from conn.send_bytes(payload[off : off + n])
            off += n
        yield from conn.close()

    run_procs(tb.sim, server(), client(), max_events=100_000_000)
    assert hashlib.sha256(out["got"]).digest() == hashlib.sha256(payload).digest()
