"""Send-credit accounting: unit tests and low-credit flow control."""

import os

import pytest

from helpers import run_procs
from repro.exs import BlockingSocket, CreditError, CreditManager, ExsSocketOptions
from repro.testbed import Testbed


# -- unit ---------------------------------------------------------------
def test_initial_credits_and_reserve():
    cm = CreditManager(initial_remote=10, control_reserve=2)
    assert cm.available == 10
    assert cm.can_send_data(8)
    assert not cm.can_send_data(9)  # would dip into the control reserve
    assert cm.can_send_control()


def test_consume_and_grant_cycle():
    cm = CreditManager(initial_remote=4, control_reserve=1)
    cm.consume(3)
    assert cm.available == 1
    assert not cm.can_send_data(1)
    assert cm.on_peer_grant(2)  # peer reposted 2
    assert cm.available == 3
    assert not cm.on_peer_grant(1)  # stale cumulative grant: ignored
    assert cm.available == 3



def test_peer_grant_noop_on_regressing_or_equal_cumulative():
    """`on_peer_grant` is a pure cumulative-max: a replayed or reordered
    grant at or below the recorded high-water mark changes nothing (the
    grant counter piggybacks on every control message, so duplicates under
    chaos are routine, not errors)."""
    cm = CreditManager(initial_remote=8, control_reserve=2)
    assert cm.on_peer_grant(3)
    avail = cm.available
    assert not cm.on_peer_grant(3)  # exact duplicate
    assert not cm.on_peer_grant(2)  # regression (reordered older grant)
    assert not cm.on_peer_grant(0)
    assert cm.peer_repost_cum == 3
    assert cm.available == avail
    assert cm.on_peer_grant(5)      # progress resumes normally
    assert cm.peer_repost_cum == 5
    assert cm.available == avail + 2


def test_over_consume_rejected():
    cm = CreditManager(initial_remote=3, control_reserve=1)
    with pytest.raises(CreditError):
        cm.consume(4)


def test_reserve_must_be_below_initial():
    with pytest.raises(CreditError):
        CreditManager(initial_remote=2, control_reserve=2)


def test_local_grant_bookkeeping():
    cm = CreditManager(initial_remote=8)
    for _ in range(5):
        cm.on_local_repost()
    assert cm.ungranted() == 5
    assert cm.grant_now() == 5
    assert cm.ungranted() == 0


def test_stale_grants_reordered_on_a_lossy_wire():
    """Cumulative grants are idempotent under any delivery order: a late or
    duplicated (retransmitted) grant can never roll availability back."""
    cm = CreditManager(initial_remote=6, control_reserve=1)
    cm.consume(4)
    assert cm.on_peer_grant(5)
    avail = cm.available
    # replays and reorderings of older grants, as go-back-N produces
    for stale in (5, 3, 1, 5, 0):
        assert not cm.on_peer_grant(stale)
        assert cm.available == avail
    assert cm.on_peer_grant(6)
    assert cm.available == avail + 1


def test_consume_beyond_available_after_grants():
    """The over-consume guard holds against the granted total, not just the
    initial pool."""
    cm = CreditManager(initial_remote=4, control_reserve=1)
    cm.on_peer_grant(2)
    cm.consume(6)
    assert cm.available == 0
    with pytest.raises(CreditError, match="consuming 1"):
        cm.consume(1)


def test_ungranted_tracks_interleaved_repost_and_grant():
    cm = CreditManager(initial_remote=8)
    cm.on_local_repost(3)
    assert cm.grant_now() == 3
    cm.on_local_repost(2)
    assert cm.ungranted() == 2
    cm.on_local_repost()
    assert cm.ungranted() == 3
    assert cm.grant_now() == 6
    assert cm.ungranted() == 0
    # grant_now with nothing new keeps the cumulative value stable
    assert cm.grant_now() == 6


# -- integration: tiny credit pool must not deadlock -------------------------
@pytest.mark.parametrize("credits", [8, 16])
def test_stream_completes_with_tiny_credit_pool(credits):
    tb = Testbed(seed=4)
    payload = os.urandom(200_000)
    options = ExsSocketOptions(credits=credits, ring_capacity=32 * 1024)
    out = {}

    def server():
        conn = yield from BlockingSocket.accept_one(tb.server, 4400, options=options)
        got = b""
        while len(got) < len(payload):
            data = yield from conn.recv_bytes(16_384)
            assert data != b""
            got += data
        out["got"] = got

    def client():
        conn = yield from BlockingSocket.connect(tb.client, 4400, options=options)
        for off in range(0, len(payload), 20_000):
            yield from conn.send_bytes(payload[off : off + 20_000])

    run_procs(tb.sim, server(), client(), max_events=100_000_000)
    assert out["got"] == payload


def test_credit_starvation_recovers_via_explicit_update():
    """With a minimal pool and one-way traffic, the receiver must push
    explicit credit updates to keep the sender moving."""
    tb = Testbed(seed=5)
    options = ExsSocketOptions(credits=6, ring_capacity=16 * 1024,
                               control_credit_reserve=2)
    out = {}

    def server():
        conn = yield from BlockingSocket.accept_one(tb.server, 4401, options=options)
        got = b""
        while len(got) < 60_000:
            got += yield from conn.recv_bytes(4096)
        out["got_len"] = len(got)
        out["conn"] = conn

    def client():
        conn = yield from BlockingSocket.connect(tb.client, 4401, options=options)
        yield from conn.send_bytes(b"z" * 60_000)
        out["blocked"] = conn.sock.tx_stats.sender_blocked

    run_procs(tb.sim, server(), client(), max_events=100_000_000)
    assert out["got_len"] == 60_000
