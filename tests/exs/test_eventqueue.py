"""EXS event queues: ordering, wake-up latency, overflow."""

from helpers import run_procs
from repro.exs.eventqueue import ExsEvent, ExsEventQueue, ExsEventType
from repro.verbs.comp_channel import fixed_wakeup


def ev(i):
    return ExsEvent(kind=ExsEventType.RECV, socket=None, nbytes=i)


def test_fifo_delivery(sim):
    eq = ExsEventQueue(sim)
    eq.post(ev(1))
    eq.post(ev(2))
    got = []

    def consumer():
        a = yield eq.dequeue()
        b = yield eq.dequeue()
        got.extend([a.nbytes, b.nbytes])

    run_procs(sim, consumer())
    assert got == [1, 2]


def test_no_wakeup_cost_when_events_queued(sim):
    eq = ExsEventQueue(sim, wakeup=fixed_wakeup(7000))
    eq.post(ev(1))

    def consumer():
        yield eq.dequeue()
        return sim.now

    assert run_procs(sim, consumer()) == [0]
    assert eq.slept_wakeups == 0


def test_wakeup_cost_when_blocked(sim):
    eq = ExsEventQueue(sim, wakeup=fixed_wakeup(7000))

    def consumer():
        yield eq.dequeue()
        return sim.now

    def producer():
        yield sim.timeout(100)
        eq.post(ev(1))

    results = run_procs(sim, consumer(), producer())
    assert results[0] == 100 + 7000
    assert eq.slept_wakeups == 1


def test_try_dequeue(sim):
    eq = ExsEventQueue(sim)
    assert eq.try_dequeue() is None
    eq.post(ev(5))
    assert eq.try_dequeue().nbytes == 5


def test_overflow_surfaces_error_event(sim):
    """Overflow must not crash the library mid-callback: the completion is
    dropped (and counted) and one reserved-slot ERROR event is queued."""
    eq = ExsEventQueue(sim, depth=2)
    eq.post(ev(1))
    eq.post(ev(2))
    eq.post(ev(3))  # dropped; queues the ERROR event
    eq.post(ev(4))  # dropped; ERROR already reported
    assert eq.dropped == 2
    assert eq.try_dequeue().nbytes == 1
    assert eq.try_dequeue().nbytes == 2
    err = eq.try_dequeue()
    assert err.kind is ExsEventType.ERROR
    assert not err.ok
    assert "overflow" in err.error
    assert eq.try_dequeue() is None


def test_overflow_error_event_not_lost_when_full(sim):
    """The ERROR event uses a reserved slot, so a persistently full queue
    still surfaces exactly one overflow notification."""
    eq = ExsEventQueue(sim, depth=1)
    eq.post(ev(1))
    for i in range(5):
        eq.post(ev(10 + i))
    assert eq.dropped == 5
    assert len(eq) == 2  # the original event + the reserved-slot error


def test_delivered_counter(sim):
    eq = ExsEventQueue(sim)
    for i in range(3):
        eq.post(ev(i))
    assert eq.delivered == 3
    assert len(eq) == 3


def test_event_ok_and_flags():
    good = ExsEvent(kind=ExsEventType.SEND, socket=None, nbytes=10)
    bad = ExsEvent(kind=ExsEventType.ERROR, socket=None, error="boom")
    assert good.ok and not bad.ok
    eof = ExsEvent(kind=ExsEventType.RECV, socket=None, nbytes=0, eof=True)
    assert eof.eof and eof.nbytes == 0
