"""End-to-end stream socket behaviour with real bytes."""

import os

import pytest

from helpers import run_procs
from repro.core import ProtocolMode
from repro.exs import BlockingSocket, ExsError, ExsSocketOptions, MsgFlags, SocketType
from repro.testbed import Testbed


def small_ring_options(**kw):
    return ExsSocketOptions(ring_capacity=64 * 1024, **kw)


def pipe(testbed, server_fn, client_fn, port=4000, options=None):
    """Run a server/client pair of generator factories taking a BlockingSocket."""
    out = {}

    def server():
        conn = yield from BlockingSocket.accept_one(
            testbed.server, port, options=options
        )
        out["server"] = yield from server_fn(conn)

    def client():
        conn = yield from BlockingSocket.connect(testbed.client, port, options=options)
        out["client"] = yield from client_fn(conn)

    run_procs(testbed.sim, server(), client(), max_events=50_000_000)
    return out


def test_bytes_survive_roundtrip(testbed):
    payload = os.urandom(100_000)

    def server_fn(conn):
        chunks = []
        while True:
            data = yield from conn.recv_bytes(8192)
            if data == b"":
                break
            chunks.append(data)
        return b"".join(chunks)

    def client_fn(conn):
        for off in range(0, len(payload), 10_000):
            yield from conn.send_bytes(payload[off : off + 10_000])
        yield from conn.close()
        return True

    out = pipe(testbed, server_fn, client_fn)
    assert out["server"] == payload


def test_stream_rechunks_across_recv_sizes(testbed):
    """Stream semantics: send sizes and recv sizes are independent."""
    payload = bytes(range(256)) * 64  # 16384 bytes

    def server_fn(conn):
        got = b""
        sizes = []
        while True:
            data = yield from conn.recv_bytes(1000)
            if data == b"":
                break
            sizes.append(len(data))
            got += data
        assert all(s <= 1000 for s in sizes)
        return got

    def client_fn(conn):
        yield from conn.send_bytes(payload)  # one big send
        yield from conn.close()

    out = pipe(testbed, server_fn, client_fn)
    assert out["server"] == payload


def test_large_send_through_small_ring(testbed):
    """A send far larger than the intermediate buffer flows through it in
    pieces without loss (sender blocks on buffer-space ACKs)."""
    payload = os.urandom(300_000)  # ring is 64 KiB

    def server_fn(conn):
        got = b""
        while len(got) < len(payload):
            data = yield from conn.recv_bytes(50_000)
            assert data != b""
            got += data
        return got

    def client_fn(conn):
        yield from conn.send_bytes(payload)
        return True

    out = pipe(testbed, server_fn, client_fn, options=small_ring_options())
    assert out["server"] == payload


def test_waitall_fills_buffer_exactly(testbed):
    payload = os.urandom(50_000)

    def server_fn(conn):
        data = yield from conn.recv_bytes(50_000, waitall=True)
        assert len(data) == 50_000
        return data

    def client_fn(conn):
        # many small sends must accumulate into the single WAITALL recv
        for off in range(0, 50_000, 1250):
            yield from conn.send_bytes(payload[off : off + 1250])
        return True

    out = pipe(testbed, server_fn, client_fn)
    assert out["server"] == payload


def test_eof_semantics(testbed):
    def server_fn(conn):
        first = yield from conn.recv_bytes(100)
        eof1 = yield from conn.recv_bytes(100)
        eof2 = yield from conn.recv_bytes(100)  # recv after EOF: immediate EOF
        return (first, eof1, eof2)

    def client_fn(conn):
        yield from conn.send_bytes(b"bye")
        yield from conn.close()
        return True

    out = pipe(testbed, server_fn, client_fn)
    assert out["server"] == (b"bye", b"", b"")


def test_bidirectional_streams(testbed):
    """Both directions of one connection carry independent streams."""

    def server_fn(conn):
        data = yield from conn.recv_bytes(1000)
        yield from conn.send_bytes(data[::-1])
        return data

    def client_fn(conn):
        yield from conn.send_bytes(b"forward")
        back = yield from conn.recv_bytes(1000)
        return back

    out = pipe(testbed, server_fn, client_fn)
    assert out["server"] == b"forward"
    assert out["client"] == b"drawrof"


def test_offsets_respected(testbed):
    """exs_send/exs_recv honour buffer offsets."""
    out = {}

    def server():
        stack = testbed.server
        lsock = stack.socket()
        lsock.bind_listen(4001)
        eq = stack.qcreate()
        lsock.accept(eq)
        ev = yield eq.dequeue()
        sock = ev.socket
        buf = stack.alloc(100)
        mr = yield from stack.mregister(buf)
        sock.recv(buf, mr, 10, eq, offset=37)
        ev = yield eq.dequeue()
        out["n"] = ev.nbytes
        out["data"] = buf.read(37, ev.nbytes)
        out["guard"] = buf.read(30, 7)

    def client():
        stack = testbed.client
        sock = stack.socket()
        eq = stack.qcreate()
        sock.connect(4001, eq)
        yield eq.dequeue()
        buf = stack.alloc(100)
        buf.write(60, b"PAYLOAD")
        mr = yield from stack.mregister(buf)
        sock.send(buf, mr, 7, eq, offset=60)
        yield eq.dequeue()

    run_procs(testbed.sim, server(), client(), max_events=10_000_000)
    assert out["n"] == 7
    assert out["data"] == b"PAYLOAD"
    assert out["guard"] == b"\x00" * 7  # bytes before the offset untouched


def test_api_validation(testbed):
    stack = testbed.client
    sock = stack.socket()
    eq = stack.qcreate()
    buf = stack.alloc(10)
    with pytest.raises(ExsError, match="not connected"):
        sock.send(buf, None, 5, eq)
    sock2 = stack.socket()
    with pytest.raises(ExsError, match="non-listening"):
        sock2.accept(eq)


def test_mode_mismatch_detected(testbed):
    """Peers configured with different protocol modes refuse to connect."""

    def server():
        try:
            yield from BlockingSocket.accept_one(
                testbed.server, 4002,
                options=ExsSocketOptions(mode=ProtocolMode.DIRECT_ONLY),
            )
        except ExsError as exc:
            return str(exc)
        return None

    def client():
        try:
            yield from BlockingSocket.connect(
                testbed.client, 4002,
                options=ExsSocketOptions(mode=ProtocolMode.INDIRECT_ONLY),
            )
        except ExsError as exc:
            return str(exc)
        return None

    results = run_procs(testbed.sim, server(), client(), max_events=10_000_000)
    assert results[0] is not None and "mode mismatch" in results[0]
    assert results[1] is not None  # rejected
