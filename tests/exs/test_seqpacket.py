"""SOCK_SEQPACKET: message boundaries, truncation, EOF."""

import pytest

from helpers import run_procs
from repro.exs import BlockingSocket, SocketType
from repro.testbed import Testbed


def pipe(testbed, server_fn, client_fn, port=4200):
    out = {}

    def server():
        conn = yield from BlockingSocket.accept_one(
            testbed.server, port, SocketType.SOCK_SEQPACKET
        )
        out["server"] = yield from server_fn(conn)

    def client():
        conn = yield from BlockingSocket.connect(
            testbed.client, port, SocketType.SOCK_SEQPACKET
        )
        out["client"] = yield from client_fn(conn)

    run_procs(testbed.sim, server(), client(), max_events=20_000_000)
    return out


def test_message_boundaries_preserved(testbed):
    messages = [b"one", b"two-two", b"three" * 20]

    def server_fn(conn):
        got = []
        for _ in messages:
            got.append((yield from conn.recv_bytes(4096)))
        return got

    def client_fn(conn):
        for m in messages:
            yield from conn.send_bytes(m)
        return True

    out = pipe(testbed, server_fn, client_fn)
    # unlike a stream, three sends arrive as exactly three messages
    assert out["server"] == messages


def test_oversized_message_truncated(testbed):
    def server_fn(conn):
        return (yield from conn.recv_bytes(8))  # small buffer

    def client_fn(conn):
        n = yield from conn.send_bytes(b"0123456789ABCDEF")
        return n

    out = pipe(testbed, server_fn, client_fn)
    assert out["server"] == b"01234567"  # cut to fit: the data-loss hazard
    assert out["client"] == 8  # completion reports what actually moved


def test_eof_after_close(testbed):
    def server_fn(conn):
        first = yield from conn.recv_bytes(64)
        eof = yield from conn.recv_bytes(64)
        return (first, eof)

    def client_fn(conn):
        yield from conn.send_bytes(b"last")
        yield from conn.close()
        return True

    out = pipe(testbed, server_fn, client_fn)
    assert out["server"] == (b"last", b"")


def test_sender_waits_for_advert(testbed):
    """A message posted before any exs_recv is parked until the ADVERT."""
    out = {}

    def server():
        conn = yield from BlockingSocket.accept_one(
            testbed.server, 4300, SocketType.SOCK_SEQPACKET
        )
        # delay the recv posting well past the client's send
        yield testbed.sim.timeout(2_000_000)
        out["recv_at"] = testbed.sim.now
        data = yield from conn.recv_bytes(64)
        out["data"] = data

    def client():
        conn = yield from BlockingSocket.connect(
            testbed.client, 4300, SocketType.SOCK_SEQPACKET
        )
        yield from conn.send_bytes(b"parked")
        out["send_done_at"] = testbed.sim.now

    run_procs(testbed.sim, server(), client(), max_events=20_000_000)
    assert out["data"] == b"parked"
    # the send could not complete before the recv was posted
    assert out["send_done_at"] > out["recv_at"]


def test_seqpacket_is_all_zero_copy(testbed):
    def server_fn(conn):
        msgs = []
        for _ in range(5):
            msgs.append((yield from conn.recv_bytes(1024)))
        stats = conn.sock.rx_stats
        return (msgs, stats)

    def client_fn(conn):
        for i in range(5):
            yield from conn.send_bytes(bytes([i]) * 100)
        return conn.sock.tx_stats

    out = pipe(testbed, server_fn, client_fn)
    tx = out["client"]
    assert tx.direct_transfers == 5
    assert tx.indirect_transfers == 0
    _msgs, rx = out["server"]
    assert rx.copies == 0  # nothing ever goes through an intermediate buffer
