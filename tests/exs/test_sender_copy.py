"""SDP-BCopy / rsockets-style send-side staging (``sender_copy``)."""

import os

import pytest

from helpers import run_procs
from repro.apps import BlastConfig, FixedSizes, run_blast
from repro.bench.profiles import ROCE_10G_WAN
from repro.core import ProtocolMode
from repro.exs import BlockingSocket, ExsSocketOptions
from repro.testbed import Testbed


def test_sender_copy_stream_integrity():
    tb = Testbed(seed=3)
    opts = ExsSocketOptions(sender_copy=True)
    payload = os.urandom(90_000)
    out = {}

    def server():
        conn = yield from BlockingSocket.accept_one(tb.server, 4970, options=opts)
        got = b""
        while len(got) < len(payload):
            d = yield from conn.recv_bytes(25_000)
            assert d
            got += d
        out["got"] = got

    def client():
        conn = yield from BlockingSocket.connect(tb.client, 4970, options=opts)
        for off in range(0, len(payload), 15_000):
            yield from conn.send_bytes(payload[off : off + 15_000])

    run_procs(tb.sim, server(), client(), max_events=50_000_000)
    assert out["got"] == payload


def test_user_buffer_reusable_after_staged_completion():
    """The defining BCopy semantic: once the send completes, mutating the
    user buffer must not affect the data still in flight."""
    tb = Testbed(seed=4)
    opts = ExsSocketOptions(sender_copy=True)
    out = {}

    def server():
        conn = yield from BlockingSocket.accept_one(tb.server, 4971, options=opts)
        out["got"] = yield from conn.recv_bytes(64_000, waitall=True)

    def client():
        stack = tb.client
        from repro.exs import ExsEventType

        sock = stack.socket(options=opts)
        eq = stack.qcreate()
        buf = stack.alloc(64_000)
        buf.fill(b"G" * 64_000)
        mr = yield from stack.mregister(buf)
        sock.connect(4971, eq)
        ev = yield eq.dequeue()
        assert ev.kind is ExsEventType.CONNECT
        sock.send(buf, mr, 64_000, eq)
        ev = yield eq.dequeue()
        assert ev.kind is ExsEventType.SEND
        # completion delivered: scribble over the user buffer immediately
        buf.fill(b"X" * 64_000)

    run_procs(tb.sim, server(), client(), max_events=50_000_000)
    assert out["got"] == b"G" * 64_000  # the scribble never reached the wire


def test_sender_copy_over_wan_gives_fast_send_response():
    """Over 48 ms RTT a zero-copy send completes after the transport ACK
    round trip; a staged send completes after a local memcpy — the 'fast
    send response benefit of TCP-style buffering' (paper §I)."""

    def run(sender_copy):
        cfg = BlastConfig(
            total_messages=30,
            sizes=FixedSizes(1 << 20),
            recv_buffer_bytes=1 << 20,
            outstanding_sends=4,
            outstanding_recvs=8,
            options=ExsSocketOptions(sender_copy=sender_copy, ring_capacity=64 << 20),
        )
        return run_blast(cfg, ROCE_10G_WAN, seed=1, max_events=100_000_000)

    zero_copy = run(False)
    bcopy = run(True)
    assert zero_copy.send_latency_percentile_ns(50) > 40_000_000   # >= ~RTT
    assert bcopy.send_latency_percentile_ns(50) < 10_000_000       # local-ish
    # and the stream still arrives whole
    assert bcopy.total_bytes == zero_copy.total_bytes


def test_send_latency_samples_populated():
    cfg = BlastConfig(total_messages=20, sizes=FixedSizes(1 << 16),
                      recv_buffer_bytes=1 << 16)
    r = run_blast(cfg, seed=1, max_events=50_000_000)
    assert len(r.send_latencies_ns) == 20
    assert r.send_latency_percentile_ns(0) <= r.send_latency_percentile_ns(99)
