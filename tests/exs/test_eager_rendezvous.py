"""Eager/rendezvous SEND-RECV transport: semantics and copy accounting.

The alternative data plane (``transport="eager_rendezvous"``) replaces the
paper's WRITE-WITH-IMM + ADVERT machinery with the MPICH2-over-IB shape:
messages at or below ``eager_threshold`` are SENT into receiver bounce
slots (two copies per byte: slot placement + slot→user copy-out), larger
messages do an RTS/CTS handshake and a single RDMA WRITE into the granted
user buffer (one placement copy per byte).  These tests pin the stream
semantics (ordering, WAITALL, EOF) and the per-byte copy accounting that
the crossover benchmarks rely on.
"""

import os
import random

import pytest

from helpers import run_procs
from repro.core import SafetyViolation
from repro.exs import (
    TRANSPORT_EAGER_RENDEZVOUS,
    TRANSPORT_WWI,
    BlockingSocket,
    ExsSocketOptions,
)
from repro.testbed import Testbed

RDV = ExsSocketOptions(transport=TRANSPORT_EAGER_RENDEZVOUS)


def transfer(tb, pieces, *, options=RDV, recv=8_192, waitall=False, port=4600):
    """Send *pieces* client→server; returns delivered bytes + both conns."""
    out = {}

    def server():
        conn = yield from BlockingSocket.accept_one(tb.server, port, options=options)
        chunks = []
        while True:
            data = yield from conn.recv_bytes(recv, waitall=waitall)
            if data == b"":
                break
            chunks.append(data)
        out["data"] = b"".join(chunks)
        out["rx_conn"] = conn.sock.conn

    def client():
        conn = yield from BlockingSocket.connect(tb.client, port, options=options)
        for piece in pieces:
            yield from conn.send_bytes(piece)
        out["tx_conn"] = conn.sock.conn
        yield from conn.close()

    run_procs(tb.sim, server(), client(), max_events=200_000_000)
    return out


def test_eager_path_copies_each_byte_exactly_twice():
    """All messages below the threshold: every byte goes slot → user, so
    the receiver meters exactly two copies per payload byte and the sender
    accounts the traffic as indirect (staged) transfers."""
    tb = Testbed(seed=21)
    pieces = [random.Random(21).randbytes(4_000) for _ in range(8)]
    total = sum(len(p) for p in pieces)
    out = transfer(tb, pieces)
    assert out["data"] == b"".join(pieces)
    tx, rx = out["tx_conn"].tx_stats, out["rx_conn"].rx_stats
    assert tx.indirect_transfers == len(pieces)
    assert tx.indirect_bytes == total
    assert tx.direct_transfers == 0
    assert rx.copied_bytes == total  # one explicit copy-out per eager byte
    assert out["rx_conn"].copy_meter.payload_bytes_copied == 2 * total


def test_rendezvous_path_places_each_byte_exactly_once():
    """All messages above the threshold: RTS/CTS then one WRITE into the
    granted user buffer — a single placement copy per byte, no copy-outs."""
    tb = Testbed(seed=22)
    pieces = [random.Random(22).randbytes(40_000) for _ in range(4)]
    total = sum(len(p) for p in pieces)
    out = transfer(tb, pieces, recv=40_000, waitall=True)
    assert out["data"] == b"".join(pieces)
    tx, rx = out["tx_conn"].tx_stats, out["rx_conn"].rx_stats
    assert tx.direct_transfers == len(pieces)
    assert tx.direct_bytes == total
    assert tx.indirect_transfers == 0
    assert rx.copies == 0
    assert out["rx_conn"].copy_meter.payload_bytes_copied == total


def test_mixed_sizes_preserve_stream_order_and_accounting():
    """Eager and rendezvous messages interleaved in one stream must still
    deliver in submission order, and the two copy classes must sum exactly."""
    tb = Testbed(seed=23)
    rng = random.Random(23)
    sizes = [300, 50_000, 4_096, 17_000, 64, 90_000, 8_000, 16 * 1024]
    pieces = [rng.randbytes(n) for n in sizes]
    out = transfer(tb, pieces, recv=12_288)
    assert out["data"] == b"".join(pieces)
    tx = out["tx_conn"].tx_stats
    eager_bytes = sum(n for n in sizes if n <= RDV.eager_threshold)
    rdv_bytes = sum(n for n in sizes if n > RDV.eager_threshold)
    assert tx.indirect_bytes == eager_bytes
    assert tx.direct_bytes == rdv_bytes
    meter = out["rx_conn"].copy_meter
    assert meter.payload_bytes_copied == 2 * eager_bytes + rdv_bytes
    assert meter.pin_violations == 0
    assert meter.pins_outstanding == 0


def test_waitall_spans_eager_and_rendezvous_boundaries():
    """MSG_WAITALL must fill across transport-class boundaries: a recv that
    needs bytes from both an eager tail and a rendezvous message completes
    only when full."""
    tb = Testbed(seed=24)
    pieces = [b"a" * 5_000, b"b" * 30_000, b"c" * 5_000]
    out = transfer(tb, pieces, recv=10_000, waitall=True)
    assert out["data"] == b"".join(pieces)
    assert len(out["data"]) == 40_000


def test_transport_mismatch_is_rejected_at_handshake():
    """The hello message carries the transport; mixing planes on one
    connection is a configuration error, not silent corruption."""
    from repro.exs import ExsError

    tb = Testbed(seed=25)
    wwi = ExsSocketOptions(transport=TRANSPORT_WWI)

    def server():
        yield from BlockingSocket.accept_one(tb.server, 4601, options=wwi)

    def client():
        yield from BlockingSocket.connect(tb.client, 4601, options=RDV)

    with pytest.raises(ExsError, match="transport mismatch"):
        run_procs(tb.sim, server(), client(), max_events=50_000_000)


def test_env_variable_selects_transport(monkeypatch):
    """``REPRO_TRANSPORT`` resolves only when no explicit choice was made —
    this is the hook the CI variant matrix uses."""
    monkeypatch.setenv("REPRO_TRANSPORT", TRANSPORT_EAGER_RENDEZVOUS)
    assert ExsSocketOptions().effective_transport() == TRANSPORT_EAGER_RENDEZVOUS
    explicit = ExsSocketOptions(transport=TRANSPORT_WWI)
    assert explicit.effective_transport() == TRANSPORT_WWI
    monkeypatch.delenv("REPRO_TRANSPORT")
    assert ExsSocketOptions().effective_transport() == TRANSPORT_WWI


def test_scenario_config_forces_transport_through_blast():
    """ScenarioConfig.transport overrides the blast config's socket options
    so a committed benchmark scenario replays the same data plane anywhere."""
    from repro.apps.blast import BlastConfig, run_blast
    from repro.apps.workloads import FixedSizes
    from repro.config import ScenarioConfig

    scenario = ScenarioConfig(seed=3, transport=TRANSPORT_EAGER_RENDEZVOUS)
    cfg = BlastConfig(total_messages=20, sizes=FixedSizes(2_048))
    result = run_blast(cfg, scenario=scenario)
    assert result.total_bytes == 2_048 * 20
    # eager-only traffic shows up as staged (indirect) transfers
    assert result.tx_stats.indirect_transfers == 20
    assert result.tx_stats.direct_transfers == 0


def test_rdv_fin_is_idempotent_but_conflicts_are_fatal():
    tb = Testbed(seed=26)
    out = transfer(tb, [b"x" * 2_000])
    rx = out["rx_conn"].rx
    fin_seq = rx.eof_seq
    assert fin_seq == 2_000
    rx.on_fin(fin_seq)  # replay: no-op
    assert rx.eof_seq == fin_seq
    with pytest.raises(SafetyViolation):
        rx.on_fin(fin_seq + 1)


def test_recv_after_eof_completes_immediately_empty():
    tb = Testbed(seed=27)
    out = {}

    def server():
        conn = yield from BlockingSocket.accept_one(tb.server, 4602, options=RDV)
        first = yield from conn.recv_bytes(8_192)
        assert (yield from conn.recv_bytes(8_192)) == b""
        assert (yield from conn.recv_bytes(8_192)) == b""  # EOF is sticky
        out["data"] = first

    def client():
        conn = yield from BlockingSocket.connect(tb.client, 4602, options=RDV)
        yield from conn.send_bytes(b"m" * 1_000)
        yield from conn.close()

    run_procs(tb.sim, server(), client(), max_events=50_000_000)
    assert out["data"] == b"m" * 1_000


def test_rdv_transfer_is_deterministic():
    """Same seed → identical bytes and identical copy accounting."""

    def run_once():
        tb = Testbed(seed=28)
        rng = random.Random(28)
        pieces = [rng.randbytes(n) for n in (700, 25_000, 3_000, 60_000)]
        out = transfer(tb, pieces, recv=9_000)
        return (out["data"], out["rx_conn"].copy_meter.snapshot())

    assert run_once() == run_once()
