"""Control-plane encoding: immediates and message records."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.advert import Advert
from repro.exs.control import (
    CTRL_WIRE_BYTES,
    AdvertMsg,
    CreditMsg,
    FinMsg,
    IMM_DIRECT,
    IMM_INDIRECT,
    RingAckMsg,
    decode_imm,
    encode_direct_imm,
    encode_indirect_imm,
)


def test_direct_imm_roundtrip():
    imm = encode_direct_imm(1234)
    kind, aid = decode_imm(imm)
    assert kind == IMM_DIRECT and aid == 1234


def test_indirect_imm_roundtrip():
    kind, aid = decode_imm(encode_indirect_imm())
    assert kind == IMM_INDIRECT and aid == 0


@given(st.integers(min_value=0, max_value=(1 << 28) - 1))
def test_imm_roundtrip_is_lossless_within_field(aid):
    imm = encode_direct_imm(aid)
    assert imm < (1 << 32)  # fits real hardware's 32-bit immediate
    kind, decoded = decode_imm(imm)
    assert kind == IMM_DIRECT and decoded == aid


def test_direct_and_indirect_imms_never_collide():
    assert decode_imm(encode_direct_imm(0))[0] != decode_imm(encode_indirect_imm())[0]


def test_control_messages_carry_credit_grants():
    advert = Advert(advert_id=1, seq=0, length=10, phase=0)
    for msg in (AdvertMsg(advert, credit_cum=5), RingAckMsg(100, credit_cum=5),
                FinMsg(77, credit_cum=5)):
        assert msg.credit_cum == 5
    assert CreditMsg(credit_cum=9).credit_cum == 9


def test_ctrl_wire_bytes_is_small():
    # control messages must be far below the pre-posted recv buffer size
    from repro.exs.connection import RECV_BUF_BYTES

    assert CTRL_WIRE_BYTES <= RECV_BUF_BYTES
