"""iWARP emulation (WRITE + notify SEND) and busy-poll variants."""

import os

import pytest

from helpers import run_procs
from repro.apps import BlastConfig, FixedSizes, run_blast
from repro.core import ProtocolMode
from repro.exs import BlockingSocket, ExsSocketOptions, SocketType
from repro.testbed import Testbed


def stream_roundtrip(options, *, payload_bytes=150_000, seed=2, socket_type=SocketType.SOCK_STREAM):
    tb = Testbed(seed=seed)
    payload = os.urandom(payload_bytes)
    out = {}

    def server():
        conn = yield from BlockingSocket.accept_one(tb.server, 4600, socket_type, options)
        got = b""
        while len(got) < len(payload):
            data = yield from conn.recv_bytes(len(payload))
            assert data
            got += data
        out["got"] = got
        out["rx"] = conn.sock.rx_stats

    def client():
        conn = yield from BlockingSocket.connect(tb.client, 4600, socket_type, options)
        yield from conn.send_bytes(payload)
        out["tx"] = conn.sock.tx_stats
        out["messages_sent"] = conn.sock.conn.qp.messages_sent

    run_procs(tb.sim, server(), client(), max_events=50_000_000)
    assert out["got"] == payload
    return out


def test_iwarp_emulation_stream_integrity():
    out = stream_roundtrip(ExsSocketOptions(native_write_with_imm=False))
    assert out["tx"].total_transfers > 0


def test_iwarp_emulation_doubles_wire_messages():
    """Every data transfer becomes WRITE + SEND: roughly twice the QP
    messages of the native path for the same data."""
    native = stream_roundtrip(ExsSocketOptions(native_write_with_imm=True))
    emulated = stream_roundtrip(ExsSocketOptions(native_write_with_imm=False))
    assert emulated["messages_sent"] >= 2 * native["tx"].total_transfers


def test_iwarp_emulation_seqpacket():
    tb = Testbed(seed=4)
    options = ExsSocketOptions(native_write_with_imm=False)
    messages = [b"alpha", b"beta" * 100, b"g"]
    out = {}

    def server():
        conn = yield from BlockingSocket.accept_one(
            tb.server, 4601, SocketType.SOCK_SEQPACKET, options
        )
        out["got"] = []
        for _ in messages:
            out["got"].append((yield from conn.recv_bytes(4096)))

    def client():
        conn = yield from BlockingSocket.connect(
            tb.client, 4601, SocketType.SOCK_SEQPACKET, options
        )
        for m in messages:
            yield from conn.send_bytes(m)

    run_procs(tb.sim, server(), client(), max_events=50_000_000)
    assert out["got"] == messages


def test_iwarp_emulation_blast_direct_mode():
    cfg = BlastConfig(
        total_messages=30,
        sizes=FixedSizes(1 << 16),
        recv_buffer_bytes=1 << 16,
        outstanding_sends=4,
        outstanding_recvs=8,
        mode=ProtocolMode.DIRECT_ONLY,
        real_data=True,
        options=ExsSocketOptions(native_write_with_imm=False),
    )
    r = run_blast(cfg, seed=1, max_events=50_000_000)
    assert r.total_bytes == 30 * (1 << 16)
    assert r.direct_ratio == 1.0


def test_busy_poll_stream_integrity():
    out = stream_roundtrip(ExsSocketOptions(busy_poll=True))
    assert out["got"]


def test_busy_poll_burns_receiver_cpu_even_when_direct():
    """Polling removes wake-up latency but pins the library core near 100%
    — the trade-off the paper's prior study quantified."""
    def run(busy_poll):
        cfg = BlastConfig(
            total_messages=60,
            sizes=FixedSizes(1 << 18),
            recv_buffer_bytes=1 << 18,
            outstanding_sends=2,
            outstanding_recvs=8,
            mode=ProtocolMode.DIRECT_ONLY,
            options=ExsSocketOptions(busy_poll=busy_poll),
        )
        return run_blast(cfg, seed=1, max_events=50_000_000)

    polled = run(True)
    event = run(False)
    assert polled.receiver_cpu > 0.9
    assert event.receiver_cpu < 0.2
    # both moved everything; polling is at least as fast
    assert polled.total_bytes == event.total_bytes
    assert polled.throughput_bps >= event.throughput_bps * 0.98
