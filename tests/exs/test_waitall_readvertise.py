"""Regression: re-advertising a partially-filled MSG_WAITALL receive.

Found by the hypothesis model suite: when a WAITALL receive is partially
satisfied from the intermediate buffer and the connection resynchronises,
the new ADVERT must cover only the *remaining* window (placed past the
bytes already delivered).  This exercises that path end to end over the
full simulated stack with real bytes.
"""

import os

from helpers import run_procs
from repro.exs import (
    BlockingSocket,
    ExsEventType,
    ExsSocketOptions,
    MsgFlags,
)
from repro.testbed import Testbed


def test_waitall_partial_fill_then_resync_direct():
    tb = Testbed(seed=8)
    # Tiny ring so the first (indirect) piece cannot carry the whole recv.
    options = ExsSocketOptions(ring_capacity=4096)
    payload = os.urandom(64 * 1024)
    out = {}

    def server():
        stack = tb.server
        lsock = stack.socket(options=options)
        lsock.bind_listen(4500)
        eq = stack.qcreate()
        buf = stack.alloc(len(payload))
        mr = yield from stack.mregister(buf)
        lsock.accept(eq)
        ev = yield eq.dequeue()
        sock = ev.socket
        # Post the receive late: the sender's data is already flowing into
        # the (tiny) intermediate buffer by then, so this WAITALL receive is
        # first partially satisfied by copies; once the ring drains, the
        # remaining window is re-advertised and filled directly.
        yield tb.sim.timeout(100_000)
        sock.recv(buf, mr, len(payload), eq, flags=MsgFlags.MSG_WAITALL)
        ev = yield eq.dequeue()
        assert ev.kind is ExsEventType.RECV
        out["nbytes"] = ev.nbytes
        out["data"] = buf.read(0, len(payload))
        out["stats"] = sock.rx_stats

    def client():
        stack = tb.client
        sock = stack.socket(options=options)
        eq = stack.qcreate()
        buf = stack.alloc(len(payload))
        buf.fill(payload)
        mr = yield from stack.mregister(buf)
        sock.connect(4500, eq)
        ev = yield eq.dequeue()
        assert ev.kind is ExsEventType.CONNECT
        # Fire immediately: beats the ADVERT, so the stream starts indirect.
        sock.send(buf, mr, len(payload), eq)
        ev = yield eq.dequeue()
        assert ev.kind is ExsEventType.SEND
        out["tx_stats"] = sock.tx_stats

    run_procs(tb.sim, server(), client(), max_events=50_000_000)
    assert out["nbytes"] == len(payload)
    assert out["data"] == payload
    tx = out["tx_stats"]
    # the scenario really did mix both paths
    assert tx.indirect_transfers > 0, "expected the stream to start indirect"
    assert tx.direct_transfers > 0, "expected a direct resync for the remainder"
    # the original advert was suppressed (ring non-empty) and the remaining
    # window was advertised after the drain
    rx = out["stats"]
    assert rx.adverts_suppressed >= 1
    assert rx.adverts_sent >= 1
    assert rx.copies >= 1
