#!/usr/bin/env python3
"""GridFTP-style parallel-stream file movement over distance.

The work that motivated UNH EXS over distance (the paper's reference to
RDMA-based GridFTP) moves big files across long fat networks with several
parallel streams.  This example transfers a 256 MiB file over the emulated
10 GbE + 48 ms path, sweeping the stream count: each stream is window-
limited, so aggregate throughput scales with streams until the wire is
full — exactly why bulk-transfer tools parallelise.

The sweep itself runs through :func:`repro.sweep.run_sweep`, so the four
independent simulations are spread across CPU cores (results are identical
to running them serially — set ``REPRO_SWEEP_PROCESSES=1`` to check).

Run:  python examples/parallel_gridftp.py
"""

from repro import ExsSocketOptions, ROCE_10G_WAN
from repro.apps import MIB, FileTransferConfig, run_file_transfer
from repro.sweep import processes_from_env, run_sweep

FILE = 256 * MIB
STREAMS = (1, 2, 4, 8)


def transfer(cfg: FileTransferConfig, seed: int):
    """Sweep worker: one simulated transfer (module-level so it pickles)."""
    return run_file_transfer(cfg, ROCE_10G_WAN, seed=seed)


def main() -> None:
    print(f"moving a {FILE // MIB} MiB file over 10 GbE + 48 ms RTT "
          f"(1 MiB chunks, 8 outstanding per stream)\n")
    configs = [
        FileTransferConfig(
            file_bytes=FILE,
            streams=streams,
            chunk_bytes=1 * MIB,
            outstanding=8,
            options=ExsSocketOptions(ring_capacity=64 * MIB),
        )
        for streams in STREAMS
    ]
    results = run_sweep(
        configs, transfer,
        processes=processes_from_env(default=0),  # default: one per CPU
        seeds=[2] * len(configs),
    )
    print(f"{'streams':>8s} {'throughput':>14s} {'elapsed':>10s} {'per-stream':>12s}")
    for streams, r in zip(STREAMS, results):
        per = sum(s.throughput_bps for s in r.streams) / len(r.streams) / 1e9
        print(f"{streams:>8d} {r.throughput_gbps:>11.2f} Gb/s {r.elapsed_s:>8.2f} s "
              f"{per:>9.2f} Gb/s")
    print("\neach stream is limited to outstanding x chunk / RTT; parallel")
    print("streams multiply the in-flight window until the 10 GbE wire binds.")


if __name__ == "__main__":
    main()
