#!/usr/bin/env python3
"""GridFTP-style parallel-stream file movement over distance.

The work that motivated UNH EXS over distance (the paper's reference to
RDMA-based GridFTP) moves big files across long fat networks with several
parallel streams.  This example transfers a 256 MiB file over the emulated
10 GbE + 48 ms path, sweeping the stream count: each stream is window-
limited, so aggregate throughput scales with streams until the wire is
full — exactly why bulk-transfer tools parallelise.

Run:  python examples/parallel_gridftp.py
"""

from repro import ExsSocketOptions, ROCE_10G_WAN
from repro.apps import MIB, FileTransferConfig, run_file_transfer

FILE = 256 * MIB


def main() -> None:
    print(f"moving a {FILE // MIB} MiB file over 10 GbE + 48 ms RTT "
          f"(1 MiB chunks, 8 outstanding per stream)\n")
    print(f"{'streams':>8s} {'throughput':>14s} {'elapsed':>10s} {'per-stream':>12s}")
    for streams in (1, 2, 4, 8):
        cfg = FileTransferConfig(
            file_bytes=FILE,
            streams=streams,
            chunk_bytes=1 * MIB,
            outstanding=8,
            options=ExsSocketOptions(ring_capacity=64 * MIB),
        )
        r = run_file_transfer(cfg, ROCE_10G_WAN, seed=2)
        per = sum(s.throughput_bps for s in r.streams) / len(r.streams) / 1e9
        print(f"{streams:>8d} {r.throughput_gbps:>11.2f} Gb/s {r.elapsed_s:>8.2f} s "
              f"{per:>9.2f} Gb/s")
    print("\neach stream is limited to outstanding x chunk / RTT; parallel")
    print("streams multiply the in-flight window until the 10 GbE wire binds.")


if __name__ == "__main__":
    main()
