#!/usr/bin/env python3
"""Ping-pong latency across protocols, message sizes, and notification modes.

The classic ``ib_write_lat``-style study the paper lists as future work:
the client bounces a message off the server and we record round-trip
percentiles.  Ping-pong is the worst case for the dynamic protocol's
ADVERT pipeline — nothing can be pre-posted more than one message ahead —
so it cleanly exposes the zero-copy vs. buffered latency trade-off:

* tiny messages: buffering wins (the ADVERT wait dominates, the copy is free)
* large messages: zero-copy wins (the copy dominates, the ADVERT is cheap)
* busy polling removes two OS wake-ups per hop — a big deal at 64 B,
  irrelevant at 1 MiB (exactly why the paper used event notification).

Run:  python examples/latency_pingpong.py
"""

from repro import ExsSocketOptions, ProtocolMode
from repro.apps import EchoConfig, run_echo

SIZES = [64, 4 * 1024, 64 * 1024, 1024 * 1024]
ITERATIONS = 60


def measure(size: int, mode: ProtocolMode, busy_poll: bool = False):
    cfg = EchoConfig(
        iterations=ITERATIONS,
        message_bytes=size,
        mode=mode,
        options=ExsSocketOptions(busy_poll=busy_poll),
    )
    return run_echo(cfg, seed=4)


def main() -> None:
    print(f"median round-trip latency over {ITERATIONS} iterations, FDR InfiniBand model\n")
    print(f"{'size':>10s} {'direct-only':>12s} {'indirect':>12s} {'dynamic':>12s} "
          f"{'dynamic+poll':>13s}   winner")
    for size in SIZES:
        d = measure(size, ProtocolMode.DIRECT_ONLY)
        i = measure(size, ProtocolMode.INDIRECT_ONLY)
        y = measure(size, ProtocolMode.DYNAMIC)
        p = measure(size, ProtocolMode.DYNAMIC, busy_poll=True)
        winner = "zero-copy" if d.median_ns < i.median_ns else "buffered"
        print(f"{size:>9d}B {d.median_ns / 1000:>10.1f}us {i.median_ns / 1000:>10.1f}us "
              f"{y.median_ns / 1000:>10.1f}us {p.median_ns / 1000:>11.1f}us   {winner}")
    print("\np99 round-trip for 64 B dynamic: "
          f"{measure(64, ProtocolMode.DYNAMIC).p99_ns / 1000:.1f} us")


if __name__ == "__main__":
    main()
