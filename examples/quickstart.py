#!/usr/bin/env python3
"""Quickstart: a byte stream between two hosts over simulated RDMA.

Builds the two-node FDR InfiniBand testbed, connects an EXS SOCK_STREAM
socket pair, pushes a few megabytes through the dynamic protocol with real
bytes, verifies integrity, and prints the protocol statistics — showing
which transfers went zero-copy (direct) and which through the hidden
intermediate buffer (indirect).

Run:  python examples/quickstart.py
"""

import os

from repro import ScenarioConfig, Testbed
from repro.exs import BlockingSocket

PORT = 4000
MESSAGE_SIZES = [64, 1_000, 64_000, 1_000_000, 250_000, 8]


def server(tb: Testbed, out: dict):
    conn = yield from BlockingSocket.accept_one(tb.server, PORT)
    received = []
    while True:
        data = yield from conn.recv_bytes(1 << 20)
        if data == b"":
            break
        received.append(data)
    out["data"] = b"".join(received)
    out["rx_stats"] = conn.sock.rx_stats


def client(tb: Testbed, out: dict):
    conn = yield from BlockingSocket.connect(tb.client, PORT)
    with conn:  # exs_close() fires automatically on exit
        payload = os.urandom(sum(MESSAGE_SIZES))
        off = 0
        for size in MESSAGE_SIZES:
            yield from conn.send_bytes(payload[off : off + size])
            off += size
        out["data"] = payload
        out["tx_stats"] = conn.sock.tx_stats


def main() -> None:
    tb = Testbed.from_scenario(ScenarioConfig(seed=7))
    server_out, client_out = {}, {}
    tb.sim.process(server(tb, server_out), name="server")
    tb.sim.process(client(tb, client_out), name="client")
    tb.run()

    assert server_out["data"] == client_out["data"], "stream corrupted!"
    total = len(client_out["data"])
    tx = client_out["tx_stats"]
    print(f"transferred {total} bytes intact in {tb.now / 1e6:.3f} ms of simulated time")
    print(f"  direct (zero-copy) transfers : {tx.direct_transfers:4d}  ({tx.direct_bytes} bytes)")
    print(f"  indirect (buffered) transfers: {tx.indirect_transfers:4d}  ({tx.indirect_bytes} bytes)")
    print(f"  protocol mode switches       : {tx.mode_switches}")
    print(f"  ADVERTs received / discarded : {tx.adverts_received} / {tx.adverts_discarded}")
    print()
    print("synchronous one-at-a-time sockets usage keeps the sender ahead of the")
    print("receiver, so the protocol rides the intermediate buffer — the paper's")
    print("case (i).  Pipelined asynchronous receivers go zero-copy instead; see")
    print("examples/adaptive_switching.py for the protocol moving between both.")


if __name__ == "__main__":
    main()
