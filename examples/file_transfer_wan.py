#!/usr/bin/env python3
"""Large file transfer over distance — the paper's motivating scenario.

RDMA over long-haul links (GridFTP-style bulk data movement) is where
waiting for buffer advertisements hurts most: at a 48 ms RTT, a sender
that must wait for an ADVERT before each large message wastes the pipe.
This example transfers a 256 MiB "file" over the emulated 10 GbE + 48 ms
path with each of the three protocols and prints the comparison the
paper's Fig. 13 makes.

Run:  python examples/file_transfer_wan.py
"""

from repro import BlastConfig, ExsSocketOptions, FixedSizes, ProtocolMode, ScenarioConfig
from repro.apps import MIB, run_blast

FILE_BYTES = 256 * MIB
CHUNK = 1 * MIB
OUTSTANDING = 16


def main() -> None:
    print(f"transferring a {FILE_BYTES // MIB} MiB file in {CHUNK // MIB} MiB chunks, "
          f"{OUTSTANDING} outstanding ops, 10 GbE + 48 ms RTT\n")
    print(f"{'protocol':10s} {'throughput':>14s} {'transfer time':>14s} {'receiver CPU':>13s}")
    for mode in (ProtocolMode.DIRECT_ONLY, ProtocolMode.INDIRECT_ONLY, ProtocolMode.DYNAMIC):
        cfg = BlastConfig(
            total_messages=FILE_BYTES // CHUNK,
            sizes=FixedSizes(CHUNK),
            outstanding_sends=OUTSTANDING,
            outstanding_recvs=OUTSTANDING,
            recv_buffer_bytes=CHUNK,
            mode=mode,
            # size the hidden buffer above the bandwidth-delay product so
            # indirect transfers can fill the pipe
            options=ExsSocketOptions(ring_capacity=64 * MIB),
        )
        r = run_blast(cfg, scenario=ScenarioConfig(profile="roce-wan", seed=3))
        secs = (r.end_ns - r.start_ns) / 1e9
        print(f"{mode.value:10s} {r.throughput_bps / 1e9:11.3f} Gb/s {secs:12.2f} s "
              f"{r.receiver_cpu * 100:11.1f} %")
    print("\nover distance the three protocols converge (window-limited), so the")
    print("dynamic protocol's buffering costs nothing — while on a LAN it would")
    print("have preserved the zero-copy fast path (see examples/quickstart.py).")


if __name__ == "__main__":
    main()
