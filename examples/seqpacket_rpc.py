#!/usr/bin/env python3
"""Message-oriented sockets (SOCK_SEQPACKET) and the truncation hazard.

UNH EXS also offers message semantics: one ``exs_send`` matches one
``exs_recv`` and every transfer is zero-copy into the advertised buffer.
The paper's introduction warns why naively porting stream code to a
message transport loses data: "a message-oriented protocol such as UDP or
RDMA will only send the part of the message that fits into the receiver's
memory area".

This example runs a small RPC exchange over SOCK_SEQPACKET, then
demonstrates the truncation hazard by sending a reply larger than the
posted receive buffer.

Run:  python examples/seqpacket_rpc.py
"""

from repro import ScenarioConfig, SocketType, Testbed
from repro.exs import BlockingSocket

PORT = 4100
REQUESTS = [b"GET /alpha", b"GET /beta", b"GET /gamma"]


def server(tb: Testbed, out: dict):
    conn = yield from BlockingSocket.accept_one(tb.server, PORT, SocketType.SOCK_SEQPACKET)
    handled = 0
    while True:
        msg = yield from conn.recv_bytes(128)
        if msg == b"":
            break
        handled += 1
        reply = b"200 " + msg.split(b"/")[-1].upper() * 8
        yield from conn.send_bytes(reply)
    out["handled"] = handled


def client(tb: Testbed, out: dict):
    conn = yield from BlockingSocket.connect(tb.client, PORT, SocketType.SOCK_SEQPACKET)
    with conn:  # exs_close() fires automatically on exit
        replies = []
        for req in REQUESTS:
            yield from conn.send_bytes(req)
            # Deliberately small receive buffer for the last request: message
            # semantics cut the reply to fit — the data-loss hazard.
            limit = 16 if req is REQUESTS[-1] else 128
            replies.append((req, limit, (yield from conn.recv_bytes(limit))))
        out["replies"] = replies


def main() -> None:
    tb = Testbed.from_scenario(ScenarioConfig(seed=9))
    server_out, client_out = {}, {}
    tb.sim.process(server(tb, server_out), name="server")
    tb.sim.process(client(tb, client_out), name="client")
    tb.run()

    print(f"served {server_out['handled']} RPCs in {tb.now / 1e6:.3f} ms simulated\n")
    for req, limit, reply in client_out["replies"]:
        note = "  <-- TRUNCATED to fit the receive buffer!" if len(reply) == limit else ""
        print(f"  {req.decode():12s} (recv buf {limit:3d}B) -> {len(reply):3d}B "
              f"{reply[:24].decode()}...{note}")
    print("\nmessage semantics delivered each reply in one piece — except where the")
    print("receive buffer was too small, exactly the hazard stream semantics avoid.")


if __name__ == "__main__":
    main()
