#!/usr/bin/env python3
"""Watch the dynamic protocol adapt to a workload that changes mid-stream.

The paper's future-work section asks how the algorithm behaves under
"dynamically changing send and receive message sizes and burstiness during
a connection".  This example drives a three-phase workload through one
connection:

1. large 1 MiB messages with plenty of receive slack  -> direct (zero-copy)
2. a burst of small 8 KiB messages                    -> sender gets ahead,
   protocol falls back to buffered (indirect) transfers
3. large messages again                               -> the receiver drains,
   resynchronises, and the protocol returns to zero-copy

Run:  python examples/adaptive_switching.py
"""

from repro import BlastConfig, ProtocolMode, ScenarioConfig
from repro.apps import KIB, MIB, FixedSizes, PhasedSizes, run_blast

PHASES = [
    ("large  (1 MiB x 60)", FixedSizes(1 * MIB), 60),
    ("small  (8 KiB x 400)", FixedSizes(8 * KIB), 400),
    ("large  (1 MiB x 60)", FixedSizes(1 * MIB), 60),
]


def main() -> None:
    workload = PhasedSizes([(gen, count) for _label, gen, count in PHASES])
    total = sum(count for _l, _g, count in PHASES)
    cfg = BlastConfig(
        total_messages=total,
        sizes=workload,
        outstanding_sends=2,
        outstanding_recvs=4,
        recv_buffer_bytes=1 * MIB,
        mode=ProtocolMode.DYNAMIC,
    )
    r = run_blast(cfg, scenario=ScenarioConfig(seed=5))
    tx = r.tx_stats

    print("three-phase workload over one connection "
          f"({total} messages, {r.total_bytes / MIB:.0f} MiB total):")
    for label, _gen, count in PHASES:
        print(f"  - {label}")
    print()
    print(f"throughput              : {r.throughput_gbps:.2f} Gb/s")
    print(f"direct transfers        : {tx.direct_transfers} ({tx.direct_bytes / MIB:.1f} MiB)")
    print(f"indirect transfers      : {tx.indirect_transfers} ({tx.indirect_bytes / MIB:.1f} MiB)")
    print(f"protocol mode switches  : {tx.mode_switches}")
    print(f"stale ADVERTs discarded : {tx.adverts_discarded}")
    print()
    if tx.mode_switches >= 2:
        print("the protocol switched into buffered mode for the small-message burst")
        print("and recovered to zero-copy afterwards — adapting 'throughout the")
        print("entire life of the socket connection' as the paper describes.")
    else:
        print("NOTE: with this seed the receiver kept up throughout; rerun with a")
        print("different seed to observe a fallback/recovery cycle.")


if __name__ == "__main__":
    main()
