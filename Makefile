# Convenience targets for the reproduction repository.

.PHONY: install test bench bench-smoke bench-paper figures examples obs-smoke chaos-smoke all

install:
	pip install -e . || python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

# Simulator micro-benchmarks only, with results recorded for comparison
# against the committed BENCH_simulator.json baseline.
bench-smoke:
	REPRO_BENCH_QUALITY=smoke pytest benchmarks/test_simulator_performance.py \
		--benchmark-only --benchmark-json=BENCH_simulator.json

bench-paper:
	REPRO_BENCH_QUALITY=paper pytest benchmarks/ --benchmark-only

# Telemetry gate: run a traced scenario through the full obs pipeline,
# fail on export-schema drift or incomplete span coverage, and leave the
# JSONL artifact behind for inspection / CI upload.
obs-smoke:
	python -m repro.obs smoke --out telemetry-smoke.jsonl

# Fault-injection gate: stream transfers over a lossy wire must stay
# byte-exact (or fail loudly), with a reduced sweep for CI turnaround.
chaos-smoke:
	REPRO_CHAOS_QUALITY=smoke pytest tests/chaos -q

figures:
	python -m repro.bench

examples:
	for f in examples/*.py; do echo "== $$f"; python $$f; done

all: test bench figures
