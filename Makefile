# Convenience targets for the reproduction repository.

.PHONY: install test bench bench-paper figures examples all

install:
	pip install -e . || python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

bench-paper:
	REPRO_BENCH_QUALITY=paper pytest benchmarks/ --benchmark-only

figures:
	python -m repro.bench

examples:
	for f in examples/*.py; do echo "== $$f"; python $$f; done

all: test bench figures
