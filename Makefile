# Convenience targets for the reproduction repository.

.PHONY: install test bench bench-smoke bench-compare bench-paper figures examples obs-smoke trace-smoke chaos-smoke check-smoke fabric-smoke all

install:
	pip install -e . || python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

# Simulator micro-benchmarks only, with results recorded for comparison
# against the committed BENCH_simulator.json baseline.
bench-smoke:
	REPRO_BENCH_QUALITY=smoke pytest benchmarks/test_simulator_performance.py \
		--benchmark-only --benchmark-json=BENCH_simulator.json

# Regression gate: rerun the simulator micro-benchmarks into a scratch
# file and compare against the committed baseline.  Gates on the *min*
# round (a real regression raises the floor; host time-sharing noise
# mostly raises the ceiling) with a 40% threshold sized for the regime
# swings observed on shared runners.  The real-bytes blast benchmarks
# are advisory (host memcpy bandwidth, noisiest numbers); the
# event-calendar benchmarks block.
bench-compare:
	REPRO_BENCH_QUALITY=smoke pytest benchmarks/test_simulator_performance.py \
		--benchmark-only --benchmark-json=bench-current.json
	python benchmarks/bench_compare.py BENCH_simulator.json bench-current.json \
		--stat min --threshold 0.40 --advisory 'test_real_bytes_*'

bench-paper:
	REPRO_BENCH_QUALITY=paper pytest benchmarks/ --benchmark-only

# Telemetry gate: run a traced scenario through the full obs pipeline,
# fail on export-schema drift or incomplete span coverage, and leave the
# JSONL artifact behind for inspection / CI upload.
# Multi-host fabric gate: a 16-sender incast through one switched sink
# port, audited for stream-integrity violations, on the shared
# (SRQ + CQ-shard) and per-connection resource paths and on the
# temporally decoupled per-cell event kernel.
fabric-smoke:
	python -m repro.apps.incast --senders 16 --bytes 65536 \
		--message-bytes 16384 --audit
	python -m repro.apps.incast --senders 16 --bytes 65536 \
		--message-bytes 16384 --srq-depth 512 --cq-shards 4 --audit
	python -m repro.apps.incast --senders 16 --bytes 65536 \
		--message-bytes 16384 --policy drop --port-queue-bytes 16384 --audit
	python -m repro.apps.incast --senders 16 --bytes 65536 \
		--message-bytes 16384 --srq-depth 512 --cq-shards 4 \
		--kernel cells --audit

obs-smoke:
	python -m repro.obs smoke --out telemetry-smoke.jsonl

# Causal-trace gate: run a heavy-loss blast under causal capture, require
# every message's critical-path segments to reconcile exactly with its
# measured e2e latency (including nonzero retransmit_backoff), and emit a
# Chrome trace-event JSON that passes the strict validator.
trace-smoke:
	python -m repro.obs trace --smoke --out trace-smoke.json

# Fault-injection gate: stream transfers over a lossy wire must stay
# byte-exact (or fail loudly), with a reduced sweep for CI turnaround.
chaos-smoke:
	REPRO_CHAOS_QUALITY=smoke pytest tests/chaos -q $(PYTEST_FLAGS)

# Correctness gate (< 60 s): exhaust the default small scope in the model
# checker, then fuzz 50 schedule seeds through the full stack.  Violations
# leave a shrunk, replayable counterexample JSON behind for CI upload.
check-smoke:
	python -m repro.check explore --json counterexample-explore.json
	python -m repro.check explore --sends 3,2 --recvs 4w,1 \
		--json counterexample-explore-waitall.json
	python -m repro.check fuzz --seeds 50 --json counterexample-fuzz.json

figures:
	python -m repro.bench

examples:
	for f in examples/*.py; do echo "== $$f"; python $$f; done

all: test bench figures
