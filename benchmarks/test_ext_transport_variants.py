"""Hardware-variant extensions: older-iWARP emulation and busy polling.

Both come straight from the paper's background section:

* §II-B: WRITE WITH IMM "can be simulated on older iWARP hardware by
  following an RDMA WRITE with a small SEND" — this bench quantifies the
  emulation's cost.
* §IV-B: "All tests use event notification for retrieving RDMA completion
  events, as most messages in this study are large enough that there is
  little advantage to busy polling" — this bench verifies exactly that
  claim, and shows where polling *does* help (small-message latency).
"""

import pytest

from conftest import run_once
from repro.apps import BlastConfig, EchoConfig, FixedSizes, run_blast, run_echo
from repro.apps.workloads import KIB, MIB
from repro.core import ProtocolMode
from repro.exs import ExsSocketOptions


def test_iwarp_emulation_overhead(benchmark, quality):
    """WRITE+SEND emulation doubles the messages on the wire and adds a
    post+completion per transfer at the sender; for the paper's large
    messages its throughput cost is negligible (which is why newer iWARP
    added the native operation mainly for convenience and small-message
    paths)."""

    def run_one(size, native):
        cfg = BlastConfig(
            total_messages=quality.fixed_size_messages(size, hi=500),
            sizes=FixedSizes(size),
            recv_buffer_bytes=size,
            outstanding_sends=4,
            outstanding_recvs=8,
            mode=ProtocolMode.DIRECT_ONLY,
            options=ExsSocketOptions(native_write_with_imm=native),
        )
        return run_blast(cfg, seed=1, max_events=100_000_000)

    def run():
        return {
            size: (run_one(size, True), run_one(size, False))
            for size in (4 * KIB, 1 * MIB)
        }

    results = run_once(benchmark, run)
    print("\niWARP WRITE+SEND emulation vs native WWI (direct-only):")
    for size, (native, emulated) in results.items():
        print(f"  {size:>8d}B: native {native.throughput_bps / 1e9:6.2f} Gb/s, "
              f"emulated {emulated.throughput_bps / 1e9:6.2f} Gb/s "
              f"({(native.throughput_bps - emulated.throughput_bps) / native.throughput_bps:+.1%} cost)")
    for size, (native, emulated) in results.items():
        # identical goodput delivered either way
        assert emulated.total_bytes == native.total_bytes
        # throughput within a small envelope of the native path
        assert emulated.throughput_bps > 0.85 * native.throughput_bps
    # the 1 MiB cost is negligible (the extra SEND amortises completely)
    big_native, big_emulated = results[1 * MIB]
    assert big_emulated.throughput_bps > 0.97 * big_native.throughput_bps


def test_busy_polling_helps_small_message_latency(benchmark, quality):
    """Ping-pong latency: polling removes two OS wake-ups per hop, a large
    fraction of a 64 B RTT but noise for 1 MiB — the paper's rationale for
    using event notification with its large messages."""

    def rtt(size, busy_poll):
        cfg = EchoConfig(
            iterations=max(40, quality.messages // 8),
            message_bytes=size,
            mode=ProtocolMode.DYNAMIC,
            options=ExsSocketOptions(busy_poll=busy_poll),
        )
        return run_echo(cfg, seed=1).median_ns

    def run():
        return {
            size: (rtt(size, False), rtt(size, True))
            for size in (64, 1 * MIB)
        }

    results = run_once(benchmark, run)
    print("\nmedian ping-pong RTT, event notification vs busy polling:")
    for size, (event_ns, poll_ns) in results.items():
        print(f"  {size:>8d}B: event {event_ns / 1e3:8.2f} us, "
              f"poll {poll_ns / 1e3:8.2f} us "
              f"({(event_ns - poll_ns) / event_ns:+.0%} saved)")
    small_event, small_poll = results[64]
    big_event, big_poll = results[1 * MIB]
    # big win for tiny messages...
    assert small_poll < 0.7 * small_event
    # ...but "little advantage" for the paper's large messages
    assert big_poll > 0.7 * big_event
