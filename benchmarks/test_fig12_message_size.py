"""Figure 12: effect of message size (dynamic protocol, recv 4 / send 2).

Paper claims:

* 12a — "throughput generally increases with message size.  However, there
  is a 46.5 Gbps peak at the 2 mebibyte message size, with slightly lower
  throughput for higher message sizes" (attributed to HCA caching).
* 12b — "The ratio of direct sends to total sends decreases with message
  size until the message size reaches about 32 kibibytes, at which point
  the ratio begins to increase again.  With 512 KiB or higher message
  sizes, the sender is able to use all direct sends."
"""

from conftest import run_once
from repro.bench.figures import fig12


def test_fig12a_throughput(benchmark, quality, processes):
    fd = run_once(benchmark, lambda: fig12(quality, processes=processes))
    print("\n" + fd.text("throughput"))
    print("\n" + fd.text("ratio"))

    thr = fd.throughputs_gbps("dynamic")
    labels = fd.xs
    # generally increasing up to the peak
    peak_idx = thr.index(max(thr))
    assert labels[peak_idx] in ("512KiB", "2MiB"), f"peak at {labels[peak_idx]}"
    assert 40 < max(thr) < 50  # paper: 46.5 Gb/s peak
    # slightly lower beyond the peak (the caching-effect dip), but not a cliff
    tail = thr[peak_idx + 1 :]
    assert all(t < max(thr) for t in tail)
    assert all(t > 0.85 * max(thr) for t in tail)


def test_fig12b_direct_ratio_u_shape(benchmark, quality, processes):
    fd = run_once(benchmark, lambda: fig12(quality, processes=processes))

    ratios = [a.direct_ratio.mean for a in fd.series["dynamic"]]
    labels = fd.xs
    by_label = dict(zip(labels, ratios))

    # all-direct at >= 512 KiB (paper's exact claim)
    for label in ("512KiB", "2MiB", "8MiB", "32MiB", "128MiB"):
        assert by_label[label] > 0.99, f"{label}: {by_label[label]}"

    # the minimum sits in the paper's mid-size band (8 KiB - 128 KiB) ...
    min_label = labels[ratios.index(min(ratios))]
    assert min_label in ("8KiB", "32KiB", "128KiB"), f"minimum at {min_label}"
    # ... visibly below the all-direct plateau (U-shape)
    assert min(ratios) < 0.92
    # and the small-message end stays high (the left arm of the U)
    assert by_label["512B"] > 0.9
    # with the characteristic run-to-run instability in the mid band
    mid_spread = max(
        a.direct_ratio.half_width
        for a, l in zip(fd.series["dynamic"], labels)
        if l in ("8KiB", "32KiB", "128KiB")
    )
    assert mid_spread > max(
        a.direct_ratio.half_width
        for a, l in zip(fd.series["dynamic"], labels)
        if l in ("512KiB", "2MiB", "8MiB")
    )
