"""Table III: mode switches and the ratio of direct to total transfers.

Paper structure reproduced:

* equal-outstanding rows — the sender outruns the advertisements almost
  immediately: ratio < 0.01-ish with a single direct->indirect switch;
* receiver = 2 x sender rows — ADVERTs always waiting: ratio ~= 1.0 with
  no switches... except for a borderline row where one run flips early and
  sticks (the paper's (4,2) anomaly; seed-dependent in the simulation too).
"""

from conftest import run_once
from repro.bench.figures import table3


def test_table3(benchmark, quality):
    rows, text = run_once(benchmark, lambda: table3(quality))
    print("\n" + text)

    equal_rows = [(nr, ns, sw, ra) for nr, ns, sw, ra, _ in rows if nr == ns]
    double_rows = [(nr, ns, sw, ra) for nr, ns, sw, ra, _ in rows if nr == 2 * ns]

    # equal outstanding: essentially everything indirect, ~one switch.
    # The residual direct fraction is the initial ADVERT burst (~N messages
    # out of the whole run), so the bound scales with run length.
    for nr, ns, sw, ra in equal_rows:
        bound = min(0.3, 3.0 * nr / quality.messages + 0.03)
        assert ra.mean <= bound, f"({nr},{ns}): ratio {ra.mean} > {bound}"
        assert sw.mean >= 1.0, f"({nr},{ns}): no switch recorded"
        assert sw.mean < 4.0, f"({nr},{ns}): thrashing ({sw.mean} switches)"

    # 2x receives: overwhelmingly direct; allow one borderline/anomalous row
    direct_rows = [ra.mean > 0.8 for _nr, _ns, _sw, ra in double_rows]
    assert sum(direct_rows) >= len(direct_rows) - 1, (
        f"2x rows should be direct: {[(r[0], r[1], r[3].mean) for r in double_rows]}"
    )
    # rows that stayed direct saw no mode switches at all
    for nr, ns, sw, ra in double_rows:
        if ra.mean > 0.99:
            assert sw.mean == 0.0, f"({nr},{ns}): switches {sw.mean}"
