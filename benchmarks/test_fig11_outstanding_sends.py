"""Figure 11: varying outstanding sends, receiver fixed at 32 (dynamic).

Paper claims: "throughput increases with message size, as expected.  We
also see that the throughput has little variation as the number of
outstanding send operations increases above 5, except when the message
size is 128 KiB ... the variation in the number of direct transfers is
high" in a mid-size band — an instability region where runs flip between
direct and indirect.

The simulation adds one sharp corollary the paper's Fig. 9a implies: when
the send count reaches the receiver's 32, the configuration *is* the
equal-outstanding case and smaller sizes drop into indirect mode.
"""

from conftest import run_once
from repro.bench.figures import fig11


def test_fig11a_throughput(benchmark, quality):
    fd = run_once(benchmark, lambda: fig11(quality))
    print("\n" + fd.text("throughput"))
    print("\n" + fd.text("ratio"))

    # throughput ordered by message size at moderate send counts
    mid = fd.xs.index(10)
    by_size = [fd.series[label][mid].throughput_gbps for label in fd.series]
    assert by_size == sorted(by_size), f"throughput not ordered by size: {by_size}"

    # little variation across send counts in [5, 25] for large messages
    for label in ("128KiB", "1MiB"):
        vals = [a.throughput_gbps for a, s in zip(fd.series[label], fd.xs) if 5 <= s <= 25]
        assert (max(vals) - min(vals)) / max(vals) < 0.15, f"{label}: {vals}"

    # small messages are far below wire rate (per-op dominated)
    assert fd.series["512B"][mid].throughput_gbps < 8.0


def test_fig11b_direct_ratio(benchmark, quality):
    fd = run_once(benchmark, lambda: fig11(quality))

    # with few outstanding sends the receiver is always ahead: all direct
    low = fd.xs.index(2)
    for label in fd.series:
        assert fd.series[label][low].direct_ratio.mean > 0.95, label

    # somewhere in the sweep the ratio becomes unstable/indirect for the
    # smaller sizes (run-to-run variance or a collapse), while 1 MiB stays
    # overwhelmingly direct until the very end
    collapsed = [
        min(a.direct_ratio.mean for a in fd.series[label]) < 0.5
        for label in ("512B", "8KiB", "128KiB")
    ]
    assert any(collapsed), "expected an indirect collapse in the small/mid sizes"
    big_until_25 = [
        a.direct_ratio.mean for a, s in zip(fd.series["1MiB"], fd.xs) if s <= 25
    ]
    assert min(big_until_25) > 0.9

    # sends == receiver outstanding (32) reproduces the equal-outstanding
    # regime of Fig. 9a: small sizes mostly indirect
    last = fd.xs.index(32)
    assert fd.series["512B"][last].direct_ratio.mean < 0.3
