"""Related-work comparison: SDP-BCopy / rsockets-style send staging.

The paper positions its dynamic protocol against SDP's BCopy mode and
rsockets, which "perform buffer copies on both the send and receive side"
to give TCP-like semantics (§II-A), and frames the design goal as
combining "the zero-copy benefit of RDMA with the fast send response
benefit of TCP-style buffering" (§I).  This bench quantifies that
trade-off in the model:

* send-side staging makes ``exs_send`` complete after a local memcpy —
  orders of magnitude sooner than the RC transport ACK on a long path;
* the price is a sender-side copy per message (application-core time)
  and losing the true zero-copy path.
"""

import pytest

from conftest import run_once
from repro.apps import BlastConfig, FixedSizes, run_blast
from repro.apps.workloads import MIB
from repro.bench.profiles import FDR_INFINIBAND, ROCE_10G_WAN
from repro.core import ProtocolMode
from repro.exs import ExsSocketOptions


def test_bcopy_fast_send_response_vs_zero_copy(benchmark, quality):
    def run(profile, sender_copy, ring=16 * MIB):
        cfg = BlastConfig(
            total_messages=max(40, quality.messages // 6),
            sizes=FixedSizes(1 * MIB),
            recv_buffer_bytes=1 * MIB,
            outstanding_sends=4,
            outstanding_recvs=8,
            options=ExsSocketOptions(sender_copy=sender_copy, ring_capacity=ring),
        )
        return run_blast(cfg, profile, seed=1, max_events=200_000_000)

    def run_all():
        return {
            "lan_zero": run(FDR_INFINIBAND, False),
            "lan_bcopy": run(FDR_INFINIBAND, True),
            "wan_zero": run(ROCE_10G_WAN, False, ring=64 * MIB),
            "wan_bcopy": run(ROCE_10G_WAN, True, ring=64 * MIB),
        }

    results = run_once(benchmark, run_all)
    print("\nsend-call-to-completion latency (p50) and throughput:")
    for name, r in results.items():
        print(f"  {name:10s}: send p50 {r.send_latency_percentile_ns(50) / 1e6:8.3f} ms, "
              f"{r.throughput_bps / 1e9:6.2f} Gb/s, app-visible copies "
              f"{'sender+recv' if 'bcopy' in name else 'per protocol'}")

    # On the WAN the fast-send-response gap is enormous — local memcpy vs
    # a 48 ms transport round trip...
    wan_gap = (results["wan_zero"].send_latency_percentile_ns(50)
               / results["wan_bcopy"].send_latency_percentile_ns(50))
    assert wan_gap > 5, wan_gap
    # ...and because sends complete locally, a 4-outstanding application is
    # no longer window-limited: the library keeps the pipe full from its
    # staging buffers, multiplying throughput (why TCP-style buffering wins
    # over distance for applications with few outstanding operations).
    assert (results["wan_bcopy"].throughput_bps
            > 3.0 * results["wan_zero"].throughput_bps)

    # On the fast LAN the price appears instead: the staging copy caps the
    # sender at its memcpy rate, well below the zero-copy wire rate (the
    # same reason SDP grew a ZCopy mode, paper §II-A).
    assert (results["lan_bcopy"].throughput_bps
            < 0.7 * results["lan_zero"].throughput_bps)
    # send latency stays the same order on the LAN (copies queue behind
    # each other on the application core)
    lan_ratio = (results["lan_bcopy"].send_latency_percentile_ns(50)
                 / results["lan_zero"].send_latency_percentile_ns(50))
    assert 0.3 < lan_ratio < 3.0, lan_ratio
    # and the data always arrives whole
    for r in results.values():
        assert r.total_bytes == results["lan_zero"].total_bytes
