"""Extensions from the paper's future-work section (§VI).

"We plan to develop more test applications in order to further determine
the performance profile of the dynamic algorithm, such as dynamically
changing send and receive message sizes and burstiness during a
connection.  We also plan on performing latency studies.  ...  We plan to
use our network emulator to set a jitter function in order to vary the
delay to see the effect of jitter on our implementation."

All three studies are implemented here.
"""

import pytest

from conftest import run_once
from repro.apps import BlastConfig, FixedSizes, PhasedSizes, run_blast
from repro.apps.workloads import KIB, MIB
from repro.bench.profiles import ROCE_10G_WAN
from repro.core import ProtocolMode
from repro.exs import BlockingSocket, ExsSocketOptions
from repro.simnet import uniform_jitter
from repro.testbed import Testbed


def test_ext_burstiness_adaptation(benchmark, quality):
    """Changing message sizes mid-connection: the dynamic protocol re-adapts
    at phase boundaries.  Whether a given run recovers the zero-copy path
    after the burst is timing-dependent (the same stickiness behind the
    paper's Fig. 11b instability), so this is checked across seeds."""
    n = max(30, quality.messages // 8)
    total = 10 * n

    def workload():
        return PhasedSizes([
            (FixedSizes(1 * MIB), n),
            (FixedSizes(32 * KIB), 8 * n),
            (FixedSizes(1 * MIB), n),
        ])

    def run(mode, seed):
        cfg = BlastConfig(
            total_messages=total,
            sizes=workload(),
            outstanding_sends=2,
            outstanding_recvs=4,
            recv_buffer_bytes=1 * MIB,
            mode=mode,
        )
        return run_blast(cfg, seed=seed, max_events=100_000_000)

    def run_all():
        dyn = [run(ProtocolMode.DYNAMIC, s) for s in (1, 2, 5)]
        ind = run(ProtocolMode.INDIRECT_ONLY, 1)
        return dyn, ind

    dyn_runs, indirect = run_once(benchmark, run_all)
    for r in dyn_runs:
        print(f"\nphased workload seed: {r.throughput_gbps:.2f} Gb/s, "
              f"{r.mode_switches} switches, ratio {r.direct_ratio:.2f}")
    print(f"indirect-only baseline: {indirect.throughput_gbps:.2f} Gb/s")

    # at least one run demonstrably fell back AND recovered (>= 2 switches)
    assert any(r.mode_switches >= 2 for r in dyn_runs), (
        [r.mode_switches for r in dyn_runs]
    )
    # adapting never loses to being stuck in buffered mode
    for r in dyn_runs:
        assert r.throughput_bps > indirect.throughput_bps * 0.95
    # and everything arrived in every run
    assert len({r.total_bytes for r in dyn_runs}) == 1


def test_ext_latency_study(benchmark, quality):
    """Latency study (paper future work), reproducing the paper's core
    latency argument (§I): on a LAN with the receive posted well in
    advance, the zero-copy path delivers sooner (no memcpy on the critical
    path); over a 48 ms RTT, waiting for the ADVERT costs a full extra
    one-way trip, so "it is actually faster for the receiver to copy from
    a static intermediate buffer than to wait for the advertisements".
    """

    def measure(profile, mode, size, settle_ns, recv_delay_ns=0):
        tb = Testbed(profile, seed=3)
        options = ExsSocketOptions(mode=mode, ring_capacity=64 * MIB)
        recv_posted = tb.sim.event()
        out = {}

        def server():
            conn = yield from BlockingSocket.accept_one(tb.server, 5000, options=options)
            if recv_delay_ns:
                yield tb.sim.timeout(recv_delay_ns)  # receive posted on demand
            recv_posted.succeed()
            data = yield from conn.recv_bytes(size, waitall=True)
            out["done"] = tb.now
            assert len(data) == size

        def client():
            conn = yield from BlockingSocket.connect(tb.client, 5000, options=options)
            if settle_ns:
                yield recv_posted
                yield tb.sim.timeout(settle_ns)  # let the ADVERT land
            out["start"] = tb.now
            yield from conn.send_bytes(b"x" * size)

        s = tb.sim.process(server())
        c = tb.sim.process(client())
        tb.run(max_events=20_000_000)
        assert s.triggered and c.triggered
        return out["done"] - out["start"]

    def run():
        from repro.bench.profiles import FDR_INFINIBAND

        lan = []
        for size in (64 * KIB, 1 * MIB):
            lan.append((
                size,
                measure(FDR_INFINIBAND, ProtocolMode.DIRECT_ONLY, size, 50_000),
                measure(FDR_INFINIBAND, ProtocolMode.INDIRECT_ONLY, size, 50_000),
            ))
        wan = []
        for size in (64 * KIB, 1 * MIB):
            # the receiving application only posts its buffer 30 ms into the
            # connection (it was busy); the eager/buffered path has the data
            # already on-node by then, while the rendezvous/zero-copy path
            # must wait for the ADVERT to cross 24 ms of fibre
            wan.append((
                size,
                measure(ROCE_10G_WAN, ProtocolMode.DIRECT_ONLY, size, 0, 30_000_000),
                measure(ROCE_10G_WAN, ProtocolMode.INDIRECT_ONLY, size, 0, 30_000_000),
            ))
        return lan, wan

    lan, wan = run_once(benchmark, run)
    print("\nsend-to-delivery latency:")
    print("  FDR LAN, receive long posted (us):")
    for size, d, i in lan:
        print(f"    {size:>9d}B  direct {d / 1e3:8.1f}   indirect {i / 1e3:8.1f}")
    print("  10G + 48 ms RTT, receive posted on demand (ms):")
    for size, d, i in wan:
        print(f"    {size:>9d}B  direct {d / 1e6:8.2f}   indirect {i / 1e6:8.2f}")

    # LAN + pre-posted receive: zero copy wins, gap grows with size
    for size, d, i in lan:
        assert d < i, f"LAN {size}B: direct {d} vs indirect {i}"
    # WAN: waiting for the ADVERT costs ~an extra one-way trip; buffering
    # roughly halves delivery latency (paper's distance motivation: "it is
    # actually faster for the receiver to copy from a static intermediate
    # buffer than to wait for the advertisements")
    for size, d, i in wan:
        assert i < 0.65 * d, f"WAN {size}B: direct {d} vs indirect {i}"


def test_ext_jitter_over_distance(benchmark, quality):
    """Jitter on the emulated WAN path: throughput degrades gracefully and
    the protocol stays correct (the RC model never reorders)."""

    def run(jitter_spread_us):
        jitter = uniform_jitter(jitter_spread_us * 1000) if jitter_spread_us else None
        tb = Testbed(ROCE_10G_WAN, seed=6, jitter=jitter)
        cfg = BlastConfig(
            total_messages=max(50, quality.messages // 6),
            sizes=FixedSizes(1 * MIB),
            recv_buffer_bytes=1 * MIB,
            outstanding_sends=8,
            outstanding_recvs=8,
            mode=ProtocolMode.DYNAMIC,
            options=ExsSocketOptions(ring_capacity=64 * MIB),
        )
        return run_blast(cfg, testbed=tb, seed=6, max_events=100_000_000)

    results = run_once(benchmark, lambda: [(s, run(s)) for s in (0, 2_000, 10_000)])
    print("\njitter vs throughput at 48 ms RTT:")
    for spread, r in results:
        print(f"  jitter +0..{spread / 1000:.0f} ms: {r.throughput_bps / 1e6:8.1f} Mb/s")
    base = results[0][1].throughput_bps
    for spread, r in results[1:]:
        assert r.throughput_bps <= base * 1.01
        # graceful: even +10 ms of jitter costs well under proportionally
        assert r.throughput_bps > base * 0.6
