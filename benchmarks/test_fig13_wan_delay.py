"""Figure 13: throughput over distance (RoCE 10 GbE + 48 ms RTT emulator).

Paper claims: "Interestingly, over distance, all three algorithms had
similar performance" — the outstanding-operation window, not the protocol,
limits throughput; throughput scales with the number of outstanding
operations; and the dynamic protocol adapts at no cost.
"""

from conftest import run_once
from repro.analysis import window_bound_bps
from repro.apps.workloads import MIB
from repro.bench.figures import fig13


def test_fig13(benchmark, quality, processes):
    fd = run_once(benchmark, lambda: fig13(quality, processes=processes))
    print("\n" + fd.text("throughput_mbps"))

    direct = fd.metric("direct", lambda a: a.throughput_bps.mean)
    dynamic = fd.metric("dynamic", lambda a: a.throughput_bps.mean)
    indirect = fd.metric("indirect", lambda a: a.throughput_bps.mean)

    # all three protocols within a few percent of each other at every point
    for x, d, dyn, i in zip(fd.xs, direct, dynamic, indirect):
        trio = (d, dyn, i)
        spread = (max(trio) - min(trio)) / max(trio)
        assert spread < 0.08, f"protocols diverge at x={x}: {trio}"

    # throughput scales with the outstanding-operation window
    assert all(b > a for a, b in zip(direct, direct[1:]))
    assert direct[-1] > 8 * direct[0]

    # and never exceeds the analytic window bound (~ n x mean size / RTT)
    for x, d in zip(fd.xs, direct):
        bound = window_bound_bps(x, 1 * MIB, 48_000_000)
        assert d < bound * 1.15, f"x={x}: {d} vs bound {bound}"
