"""Figure 10: receiver CPU usage vs. outstanding operations (FDR IB).

Paper claims: "For the indirect-only protocol, CPU usage approaches 100%
as the number of simultaneously outstanding operations increases ...  For
the direct-only protocol, the CPU usage is always much lower because of
the zero-copy nature of RDMA.  ...  in cases where the dynamic protocol is
able to use direct transfers, the dynamic protocol adds little CPU
overhead."
"""

from conftest import run_once
from repro.bench.figures import fig10a, fig10b


def cpus(fd, name):
    return fd.metric(name, lambda a: a.receiver_cpu.mean)


def test_fig10a(benchmark, quality):
    fd = run_once(benchmark, lambda: fig10a(quality))
    print("\n" + fd.text("cpu"))

    indirect = cpus(fd, "indirect")
    direct = cpus(fd, "direct")
    dynamic = cpus(fd, "dynamic")

    # indirect approaches 100% with enough outstanding operations
    assert indirect[-1] > 0.9
    assert all(c > 0.6 for c in indirect)
    # direct stays near idle (zero copy)
    assert all(c < 0.15 for c in direct)
    # equal-outstanding dynamic behaves like indirect (it is buffering)
    for dyn, ind in zip(dynamic[1:], indirect[1:]):
        assert abs(dyn - ind) < 0.2


def test_fig10b(benchmark, quality):
    fd = run_once(benchmark, lambda: fig10b(quality))
    print("\n" + fd.text("cpu"))

    direct = cpus(fd, "direct")
    dynamic = cpus(fd, "dynamic")
    # with receive headroom, dynamic is zero-copy: CPU as low as direct-only
    low = [dyn < 0.25 for dyn in dynamic]
    assert sum(low) >= len(low) - 1, f"dynamic CPU high: {list(zip(fd.xs, dynamic))}"
    assert all(c < 0.15 for c in direct)
