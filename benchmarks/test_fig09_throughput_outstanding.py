"""Figure 9: throughput vs. simultaneously outstanding operations (FDR IB).

Paper claims reproduced here:

* 9a (equal outstanding ops): the indirect protocol is "always
  substantially lower due to the required buffer copies" (20-27 Gb/s vs
  35-46 Gb/s direct), and the dynamic protocol "drops to the level of the
  indirect-only protocol" because the sender always gets ahead.
* 9b (receives = 2 x sends): "the throughput is approximately the same as
  the direct-only protocol if the number of outstanding receive operations
  is twice as large as the number of outstanding send operations" — modulo
  one low-outstanding anomaly where an early mode switch strands a run in
  indirect mode (the paper saw this at its (4,2) point).
"""

from conftest import run_once
from repro.bench.figures import fig9a, fig9b


def test_fig9a(benchmark, quality):
    fd = run_once(benchmark, lambda: fig9a(quality))
    print("\n" + fd.text("throughput"))

    direct = fd.throughputs_gbps("direct")
    dynamic = fd.throughputs_gbps("dynamic")
    indirect = fd.throughputs_gbps("indirect")

    for x, d, i in zip(fd.xs, direct, indirect):
        # direct wins big on FDR (paper: ~45 vs ~25)
        assert d > 1.4 * i, f"direct should beat indirect at x={x}: {d} vs {i}"
    for x, dyn, i in zip(fd.xs, dynamic, indirect):
        # dynamic collapses onto the indirect baseline (within ~25%)
        assert abs(dyn - i) / i < 0.25, f"dynamic!=indirect at x={x}: {dyn} vs {i}"
    # ranges roughly match the paper's reported bands
    assert 18 < min(indirect) and max(indirect) < 32      # paper: 20-27
    assert 33 < max(direct) < 50                          # paper: 35-46


def test_fig9b(benchmark, quality):
    fd = run_once(benchmark, lambda: fig9b(quality))
    print("\n" + fd.text("throughput"))

    direct = fd.throughputs_gbps("direct")
    dynamic = fd.throughputs_gbps("dynamic")

    # With 2x receive headroom the dynamic protocol tracks direct-only at
    # most points; allow one anomalous point (the paper saw exactly one).
    close = [abs(dyn - d) / d < 0.15 for d, dyn in zip(direct, dynamic)]
    assert sum(close) >= len(close) - 1, (
        f"dynamic should track direct at all but <=1 point: {list(zip(fd.xs, close))}"
    )
    assert close[-1], "high-outstanding points must track direct"
