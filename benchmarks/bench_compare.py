#!/usr/bin/env python
"""Compare a fresh pytest-benchmark run against the committed baseline.

Usage::

    python benchmarks/bench_compare.py BASELINE.json CURRENT.json \
        [--threshold 0.25]

Reads two ``--benchmark-json`` files, matches benchmarks by name, and
fails (exit 1) if any benchmark regressed by more than the threshold
(default 25%) relative to the baseline.  Benchmarks present on only one
side are reported but never fail the comparison — new benchmarks land
before their baseline is recorded, and retired ones linger in old
baselines.

``--stat`` selects the statistic compared (default ``mean``).  On shared
or virtualised hosts prefer ``--stat min``: the mean tracks the host's
time-sharing regime (observed swinging 30-50% minute to minute on CI
runners), while the best observed round tracks what the code can
actually do — a real regression raises the floor, noise mostly raises
the ceiling.  ``make bench-compare`` gates on ``min``.

``--advisory PATTERN`` (repeatable, fnmatch syntax) marks matching
benchmarks report-only: their regressions are printed but do not affect
the exit status.  ``make bench-compare`` uses this for the real-bytes
blast benchmarks (dominated by host memcpy bandwidth, the noisiest
numbers on shared runners) while the event-calendar benchmarks stay
blocking — the kernel is the part of the harness we actively optimise,
so a calendar regression must fail CI, not hide in an advisory log.
"""

from __future__ import annotations

import argparse
import json
import sys
from fnmatch import fnmatch


def load_stats(path: str, stat: str) -> dict:
    with open(path) as fh:
        doc = json.load(fh)
    return {b["name"]: b["stats"][stat] for b in doc.get("benchmarks", [])}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed baseline json (BENCH_simulator.json)")
    parser.add_argument("current", help="fresh --benchmark-json output to check")
    parser.add_argument(
        "--threshold", type=float, default=0.25,
        help="allowed relative regression before failing (default 0.25)",
    )
    parser.add_argument(
        "--stat", choices=("min", "mean", "median"), default="mean",
        help="statistic to compare (use 'min' on noisy shared hosts)",
    )
    parser.add_argument(
        "--advisory", action="append", default=[], metavar="PATTERN",
        help="fnmatch pattern of benchmark names whose regressions are "
             "reported but do not fail the comparison (repeatable)",
    )
    args = parser.parse_args(argv)

    baseline = load_stats(args.baseline, args.stat)
    current = load_stats(args.current, args.stat)
    if not baseline:
        print(f"bench-compare: no benchmarks in baseline {args.baseline}", file=sys.stderr)
        return 2
    if not current:
        print(f"bench-compare: no benchmarks in current run {args.current}", file=sys.stderr)
        return 2

    regressions = []
    advisory_regressions = []
    width = max(len(n) for n in sorted(set(baseline) | set(current)))
    print(f"{'benchmark':<{width}}  {'baseline':>10}  {'current':>10}  {'ratio':>7}")
    for name in sorted(set(baseline) | set(current)):
        if name not in baseline:
            print(f"{name:<{width}}  {'-':>10}  {current[name] * 1e3:>8.2f}ms  {'new':>7}")
            continue
        if name not in current:
            print(f"{name:<{width}}  {baseline[name] * 1e3:>8.2f}ms  {'-':>10}  {'gone':>7}")
            continue
        ratio = current[name] / baseline[name]
        advisory = any(fnmatch(name, p) for p in args.advisory)
        if ratio > 1.0 + args.threshold:
            flag = "  <-- regression (advisory)" if advisory else "  <-- regression"
        else:
            flag = ""
        print(f"{name:<{width}}  {baseline[name] * 1e3:>8.2f}ms  "
              f"{current[name] * 1e3:>8.2f}ms  {ratio:>6.2f}x{flag}")
        if ratio > 1.0 + args.threshold:
            (advisory_regressions if advisory else regressions).append((name, ratio))

    if advisory_regressions:
        print(
            f"\nbench-compare: {len(advisory_regressions)} advisory benchmark(s) "
            f"regressed more than {args.threshold:.0%} (not failing the gate)",
        )
    if regressions:
        worst = max(r for _, r in regressions)
        print(
            f"\nbench-compare: {len(regressions)} benchmark(s) regressed more than "
            f"{args.threshold:.0%} vs {args.baseline} (worst {worst:.2f}x)",
            file=sys.stderr,
        )
        return 1
    print(f"\nbench-compare: all blocking benchmarks within {args.threshold:.0%} of baseline")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
