#!/usr/bin/env python
"""Compare a fresh pytest-benchmark run against the committed baseline.

Usage::

    python benchmarks/bench_compare.py BASELINE.json CURRENT.json \
        [--threshold 0.25]

Reads two ``--benchmark-json`` files, matches benchmarks by name, and
fails (exit 1) if any benchmark's mean regressed by more than the
threshold (default 25%) relative to the baseline.  Benchmarks present on
only one side are reported but never fail the comparison — new
benchmarks land before their baseline is recorded, and retired ones
linger in old baselines.

Meant for ``make bench-compare`` and the (non-blocking) CI job: absolute
times on shared runners are noisy, so the threshold is generous and the
job is advisory — a consistent failure across reruns is the signal.
"""

from __future__ import annotations

import argparse
import json
import sys


def load_means(path: str) -> dict:
    with open(path) as fh:
        doc = json.load(fh)
    return {b["name"]: b["stats"]["mean"] for b in doc.get("benchmarks", [])}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed baseline json (BENCH_simulator.json)")
    parser.add_argument("current", help="fresh --benchmark-json output to check")
    parser.add_argument(
        "--threshold", type=float, default=0.25,
        help="allowed relative mean regression before failing (default 0.25)",
    )
    args = parser.parse_args(argv)

    baseline = load_means(args.baseline)
    current = load_means(args.current)
    if not baseline:
        print(f"bench-compare: no benchmarks in baseline {args.baseline}", file=sys.stderr)
        return 2
    if not current:
        print(f"bench-compare: no benchmarks in current run {args.current}", file=sys.stderr)
        return 2

    regressions = []
    width = max(len(n) for n in sorted(set(baseline) | set(current)))
    print(f"{'benchmark':<{width}}  {'baseline':>10}  {'current':>10}  {'ratio':>7}")
    for name in sorted(set(baseline) | set(current)):
        if name not in baseline:
            print(f"{name:<{width}}  {'-':>10}  {current[name] * 1e3:>8.2f}ms  {'new':>7}")
            continue
        if name not in current:
            print(f"{name:<{width}}  {baseline[name] * 1e3:>8.2f}ms  {'-':>10}  {'gone':>7}")
            continue
        ratio = current[name] / baseline[name]
        flag = "  <-- regression" if ratio > 1.0 + args.threshold else ""
        print(f"{name:<{width}}  {baseline[name] * 1e3:>8.2f}ms  "
              f"{current[name] * 1e3:>8.2f}ms  {ratio:>6.2f}x{flag}")
        if ratio > 1.0 + args.threshold:
            regressions.append((name, ratio))

    if regressions:
        worst = max(r for _, r in regressions)
        print(
            f"\nbench-compare: {len(regressions)} benchmark(s) regressed more than "
            f"{args.threshold:.0%} vs {args.baseline} (worst {worst:.2f}x)",
            file=sys.stderr,
        )
        return 1
    print(f"\nbench-compare: all shared benchmarks within {args.threshold:.0%} of baseline")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
