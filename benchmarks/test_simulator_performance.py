"""Wall-clock performance of the simulation substrate itself.

Unlike the reproduction benchmarks (which measure *simulated* time), these
measure how fast the simulator runs on the host — the figure of merit for
scaling the experiment harness.  pytest-benchmark's statistics apply
normally here.
"""

import pytest

from repro.apps import BlastConfig, FixedSizes, run_blast
from repro.core import ProtocolMode
from repro.simnet import Simulator, Timeout


def test_event_calendar_throughput(benchmark):
    """Raw calendar rate: schedule-and-fire chains of timeouts."""

    def run():
        sim = Simulator()

        def chain():
            for _ in range(20_000):
                yield sim.timeout(5)

        sim.process(chain())
        sim.run()
        return sim.events_executed

    events = benchmark(run)
    assert events >= 20_000


def test_blast_simulation_rate(benchmark):
    """End-to-end cost of simulating one blast message (full stack)."""

    def run():
        cfg = BlastConfig(
            total_messages=400,
            sizes=FixedSizes(64 * 1024),
            recv_buffer_bytes=64 * 1024,
            outstanding_sends=4,
            outstanding_recvs=8,
            mode=ProtocolMode.DYNAMIC,
        )
        return run_blast(cfg, seed=1, max_events=50_000_000)

    result = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    assert result.total_bytes == 400 * 64 * 1024


def test_indirect_copy_path_rate(benchmark):
    """The busiest code path: indirect transfers with ring copies."""

    def run():
        cfg = BlastConfig(
            total_messages=300,
            sizes=FixedSizes(256 * 1024),
            recv_buffer_bytes=256 * 1024,
            outstanding_sends=4,
            outstanding_recvs=4,
            mode=ProtocolMode.INDIRECT_ONLY,
        )
        return run_blast(cfg, seed=1, max_events=50_000_000)

    result = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    assert result.rx_stats.copied_bytes == result.total_bytes


def _real_bytes_blast(mode: ProtocolMode):
    """1 MiB real-bytes blast: the data-plane (payload memcpy) hot path.

    Unlike the synthetic-mode benchmarks above, payload bytes actually move
    through every hop here, so this measures the Python-level copy cost of
    the simulated data plane itself.
    """
    cfg = BlastConfig(
        total_messages=64,
        sizes=FixedSizes(1024 * 1024),
        recv_buffer_bytes=1024 * 1024,
        outstanding_sends=4,
        outstanding_recvs=4,
        mode=mode,
        real_data=True,
    )
    return run_blast(cfg, seed=1, max_events=50_000_000)


def test_real_bytes_direct_blast_rate(benchmark):
    """Zero-copy direct path with real payload bytes (1 MiB messages)."""
    result = benchmark.pedantic(
        lambda: _real_bytes_blast(ProtocolMode.DIRECT_ONLY),
        rounds=3, iterations=1, warmup_rounds=1)
    assert result.total_bytes == 64 * 1024 * 1024
    assert result.tx_stats.indirect_transfers == 0


def test_real_bytes_indirect_blast_rate(benchmark):
    """Ring-staged indirect path with real payload bytes (1 MiB messages)."""
    result = benchmark.pedantic(
        lambda: _real_bytes_blast(ProtocolMode.INDIRECT_ONLY),
        rounds=3, iterations=1, warmup_rounds=1)
    assert result.total_bytes == 64 * 1024 * 1024
    assert result.rx_stats.copied_bytes == result.total_bytes
