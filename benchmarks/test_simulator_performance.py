"""Wall-clock performance of the simulation substrate itself.

Unlike the reproduction benchmarks (which measure *simulated* time), these
measure how fast the simulator runs on the host — the figure of merit for
scaling the experiment harness.  pytest-benchmark's statistics apply
normally here.
"""

import pytest

from repro.apps import BlastConfig, FixedSizes, run_blast
from repro.core import ProtocolMode
from repro.simnet import Simulator, Timeout


def test_event_calendar_throughput(benchmark):
    """Raw calendar rate: schedule-and-fire chains of timeouts."""

    def run():
        sim = Simulator()

        def chain():
            for _ in range(20_000):
                yield sim.timeout(5)

        sim.process(chain())
        sim.run()
        return sim.events_executed

    events = benchmark(run)
    assert events >= 20_000


def test_wheel_fixed_delay_batches(benchmark):
    """Fixed-delay regime: 64 lockstep processes on one common period.

    The dominant workload shape (link delivery at the memoized
    transmission time): every instant carries a 64-entry same-instant
    batch, all placements land in level-0 wheel slots, and the whole
    batch costs one heap operation.
    """

    def run():
        sim = Simulator()

        def worker():
            for _ in range(300):
                yield sim.timeout(1000)

        for _ in range(64):
            sim.process(worker())
        sim.run()
        stats = sim.calendar_stats()
        assert stats["max_batch"] >= 64
        return sim.events_executed

    events = benchmark(run)
    assert events >= 64 * 300


def test_overflow_heap_mixed_delays(benchmark):
    """Mixed-delay regime: deterministic spread across L0/L1/overflow.

    Delays are drawn uniformly in [0, ~33.5 ms) — twice the wheel horizon
    — so placements split between wheel slots, level-1 buckets (with
    their cascades) and the overflow heap, the worst case for the wheel
    relative to a flat heap.
    """

    def run():
        sim = Simulator()

        def worker(seed):
            state = seed
            for _ in range(2000):
                state = (state * 1103515245 + 12345) & 0x7FFFFFFF
                yield sim.timeout(state % 33_554_432)

        for s in (1, 2, 3, 4):
            sim.process(worker(s))
        sim.run()
        stats = sim.calendar_stats()
        assert stats["l1_inserts"] > 0 and stats["overflow_inserts"] > 0
        return sim.events_executed

    events = benchmark(run)
    assert events >= 4 * 2000


def test_retransmit_timer_churn(benchmark):
    """Cancel-heavy regime: retransmit timers that almost always go stale.

    Models ``verbs/reliability.py``: every message arms a 500 µs timer,
    the ACK lands ~100 ns later, and the timer eventually fires as a
    stale no-op (generation check).  The calendar carries thousands of
    pending far-future timers while near-future traffic churns through —
    the flat heap paid O(log n) on that standing population for every
    operation.
    """

    def run():
        sim = Simulator()
        acked = [0]

        def on_timer(gen):
            if gen >= acked[0]:  # pragma: no cover - timers are always stale
                raise AssertionError("retransmit fired before its ack")

        def sender():
            for i in range(10_000):
                sim.call_in(500_000, on_timer, i)
                yield sim.timeout(100)  # the "ack"; timer i is now stale
                acked[0] = i + 1

        sim.process(sender())
        sim.run()
        return sim.events_executed

    events = benchmark(run)
    assert events >= 20_000


def test_blast_simulation_rate(benchmark):
    """End-to-end cost of simulating one blast message (full stack)."""

    def run():
        cfg = BlastConfig(
            total_messages=400,
            sizes=FixedSizes(64 * 1024),
            recv_buffer_bytes=64 * 1024,
            outstanding_sends=4,
            outstanding_recvs=8,
            mode=ProtocolMode.DYNAMIC,
        )
        return run_blast(cfg, seed=1, max_events=50_000_000)

    result = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    assert result.total_bytes == 400 * 64 * 1024


def test_indirect_copy_path_rate(benchmark):
    """The busiest code path: indirect transfers with ring copies."""

    def run():
        cfg = BlastConfig(
            total_messages=300,
            sizes=FixedSizes(256 * 1024),
            recv_buffer_bytes=256 * 1024,
            outstanding_sends=4,
            outstanding_recvs=4,
            mode=ProtocolMode.INDIRECT_ONLY,
        )
        return run_blast(cfg, seed=1, max_events=50_000_000)

    result = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    assert result.rx_stats.copied_bytes == result.total_bytes


def _real_bytes_blast(mode: ProtocolMode):
    """1 MiB real-bytes blast: the data-plane (payload memcpy) hot path.

    Unlike the synthetic-mode benchmarks above, payload bytes actually move
    through every hop here, so this measures the Python-level copy cost of
    the simulated data plane itself.
    """
    cfg = BlastConfig(
        total_messages=64,
        sizes=FixedSizes(1024 * 1024),
        recv_buffer_bytes=1024 * 1024,
        outstanding_sends=4,
        outstanding_recvs=4,
        mode=mode,
        real_data=True,
    )
    return run_blast(cfg, seed=1, max_events=50_000_000)


def test_real_bytes_direct_blast_rate(benchmark):
    """Zero-copy direct path with real payload bytes (1 MiB messages)."""
    result = benchmark.pedantic(
        lambda: _real_bytes_blast(ProtocolMode.DIRECT_ONLY),
        rounds=3, iterations=1, warmup_rounds=1)
    assert result.total_bytes == 64 * 1024 * 1024
    assert result.tx_stats.indirect_transfers == 0


def test_real_bytes_indirect_blast_rate(benchmark):
    """Ring-staged indirect path with real payload bytes (1 MiB messages)."""
    result = benchmark.pedantic(
        lambda: _real_bytes_blast(ProtocolMode.INDIRECT_ONLY),
        rounds=3, iterations=1, warmup_rounds=1)
    assert result.total_bytes == 64 * 1024 * 1024
    assert result.rx_stats.copied_bytes == result.total_bytes


def _scale_incast(connections_per_sender: int, srq_depth, cq_shards,
                  bytes_per_sender: int = 32 * 1024,
                  message_bytes: int = 16 * 1024,
                  kernel=None, audit: bool = False):
    """16-sender switched fan-in at scale, synthetic payloads.

    Synthetic mode (like the calendar benchmarks, unlike the real-bytes
    blasts) so the timing measures the harness — engine scheduling, CQ
    polling, switch queueing — not host page-fault cost for hundreds of
    16 MiB rings.
    """
    from repro.apps.incast import IncastConfig, run_incast
    from repro.config import ScenarioConfig
    from repro.exs import ExsSocketOptions

    cfg = IncastConfig(
        senders=16,
        connections_per_sender=connections_per_sender,
        bytes_per_sender=bytes_per_sender,
        message_bytes=message_bytes,
        options=ExsSocketOptions(real_data=False),
    )
    return run_incast(cfg, ScenarioConfig(
        seed=1, srq_depth=srq_depth, cq_shards=cq_shards, kernel=kernel),
        audit=audit)


def test_incast_256_connection_scale(benchmark):
    """256-connection incast on the shared-resource path (SRQ + CQ shards).

    The connection-scale figure of merit for the fabric: posted receive
    buffers are bounded by the pool depth (2048) instead of growing with
    the connection count, and each device polls 8 completion vectors
    instead of 256 per-connection channels.
    """
    result = benchmark.pedantic(
        lambda: _scale_incast(16, srq_depth=2048, cq_shards=8),
        rounds=3, iterations=1, warmup_rounds=1)
    assert result.connections == 256
    assert result.switch_drops == 0
    assert result.srq_min_free is not None and result.srq_min_free >= 0
    benchmark.extra_info["end_ns"] = result.end_ns
    benchmark.extra_info["srq_min_free"] = result.srq_min_free
    benchmark.extra_info["sink_port_peak_queue_bytes"] = (
        result.sink_port_peak_queue_bytes)


def test_incast_256_connection_per_conn_resources(benchmark):
    """The same 256-connection incast on per-connection resources.

    The contrast row for the committed baseline: 256 per-connection
    engines/channels/receive queues against the pooled run above — the
    shared path must never be slower than this one.
    """
    result = benchmark.pedantic(
        lambda: _scale_incast(16, srq_depth=None, cq_shards=0),
        rounds=3, iterations=1, warmup_rounds=1)
    assert result.connections == 256
    assert result.switch_drops == 0
    benchmark.extra_info["end_ns"] = result.end_ns


def test_incast_1k_connection_scale(benchmark):
    """1024-connection incast: the thousand-endpoint claim of the SRQ
    literature, runnable only on the shared-resource path in reasonable
    time and memory."""
    result = benchmark.pedantic(
        lambda: _scale_incast(64, srq_depth=8192, cq_shards=16,
                              bytes_per_sender=16 * 1024),
        rounds=2, iterations=1, warmup_rounds=0)
    assert result.connections == 1024
    assert result.switch_drops == 0
    benchmark.extra_info["end_ns"] = result.end_ns
    benchmark.extra_info["srq_min_free"] = result.srq_min_free


def test_incast_1k_decoupled_kernel(benchmark):
    """The same 1024-connection incast on the temporally decoupled kernel.

    Per-host cells run their own calendars inside conservative lookahead
    windows instead of interleaving through one global wheel.  The paired
    row above (``test_incast_1k_connection_scale``) is the monolithic
    baseline; this row must not regress relative to it.
    """
    result = benchmark.pedantic(
        lambda: _scale_incast(64, srq_depth=8192, cq_shards=16,
                              bytes_per_sender=16 * 1024, kernel="cells"),
        rounds=2, iterations=1, warmup_rounds=0)
    assert result.connections == 1024
    assert result.switch_drops == 0
    benchmark.extra_info["end_ns"] = result.end_ns
    benchmark.extra_info["srq_min_free"] = result.srq_min_free
    benchmark.extra_info["kernel"] = "cells"


def test_incast_10k_decoupled_kernel(benchmark):
    """10240-connection audited incast: the decoupled kernel's headline.

    16 senders × 640 connections of 4 KiB each through one switch, with
    the stream-semantics auditor on — every byte ordering and completion
    invariant is checked across all ten thousand connections.  This scale
    is only tractable on the shared-resource path plus the per-cell
    calendars; the monolithic wheel runs it ~15% slower (see
    ``docs/SIMULATION.md``).
    """
    result = benchmark.pedantic(
        lambda: _scale_incast(640, srq_depth=65536, cq_shards=32,
                              bytes_per_sender=4 * 1024,
                              message_bytes=4 * 1024,
                              kernel="cells", audit=True),
        rounds=1, iterations=1, warmup_rounds=0)
    assert result.connections == 10240
    assert result.switch_drops == 0
    assert result.audit_violations == 0
    benchmark.extra_info["end_ns"] = result.end_ns
    benchmark.extra_info["srq_min_free"] = result.srq_min_free
    benchmark.extra_info["audit_violations"] = result.audit_violations
    benchmark.extra_info["kernel"] = "cells"


# ----------------------------------------------------------------------
# Micro-benchmarks for the per-event O(N) scans removed at 10k scale
# ----------------------------------------------------------------------
def test_srq_lazy_prefill_bringup(benchmark):
    """SRQ bring-up cost at fabric pool depth (64 pools × 64k slots).

    ``prefill`` materialises receive WRs lazily: bring-up books the range
    and ``take`` mints each WR on first use, so creating a 65536-slot
    pool no longer allocates 65536 RecvWR objects up front — the cost
    that dominated 10k-connection fabric construction.
    """
    from repro.fabric import Fabric
    from repro.simnet import Topology
    from repro.verbs.wr import SGE

    def run():
        fab = Fabric(topology=Topology.point_to_point())
        device = fab.device("client")
        sge = SGE(0, 256, 0)
        taken = 0
        for _ in range(64):
            srq = device.create_srq(65536)
            srq.prefill(65536, sge, wr_id_start=1)
            assert len(srq) == 65536 and srq.free == 0
            # consume a handful: lazy slots must come out FIFO-first
            for i in range(128):
                assert srq.take().wr_id == i + 1
            taken += 128
        return taken

    assert benchmark(run) == 64 * 128


def test_cq_poll_drain_throughput(benchmark):
    """CompletionQueue.poll drain rate (the per-wakeup engine hot path).

    Full drains take the bulk copy-and-clear fast path instead of
    popleft-per-entry; partial drains keep FIFO order.
    """
    from repro.verbs.cq import CompletionQueue, WorkCompletion
    from repro.verbs.enums import WCOpcode, WCStatus

    wc = WorkCompletion(wr_id=1, opcode=WCOpcode.RECV, status=WCStatus.SUCCESS)

    def run():
        cq = CompletionQueue()
        drained = 0
        for _ in range(200):
            for _ in range(512):
                cq.push(wc)
            drained += len(cq.poll(128))       # partial, FIFO
            drained += len(cq.poll())          # bulk fast path
            assert not len(cq)
        return drained

    assert benchmark(run) == 200 * 512


def test_sparse_incast_idle_shard_laps(benchmark):
    """Shard engines with mostly-idle registrations (256 conns, one 4 KiB
    message each).

    Progress rounds only visit dirty connections and quiescent laps skip
    the trailing no-op pass, so a shard's cost tracks traffic, not its
    registered-connection count — the regime that dominated sink shards
    once fan-in reached thousands of connections.
    """
    result = benchmark.pedantic(
        lambda: _scale_incast(16, srq_depth=2048, cq_shards=8,
                              bytes_per_sender=4 * 1024,
                              message_bytes=4 * 1024),
        rounds=3, iterations=1, warmup_rounds=1)
    assert result.connections == 256
    assert result.switch_drops == 0
    benchmark.extra_info["end_ns"] = result.end_ns


def test_transport_crossover_grid(benchmark):
    """Transport bake-off sweep: loss × RTT × message size, every variant.

    Times the full bake-off sweep (both data planes and both reliability
    modes share the simulation substrate, so this is the harness's
    heaviest mixed workload) and publishes the crossover table — which
    variant delivers the highest simulated throughput in each cell — into
    the benchmark JSON via ``extra_info`` so the committed
    ``BENCH_simulator.json`` carries the grid alongside the timings.
    """
    from dataclasses import replace

    from repro.bench.profiles import PROFILES
    from repro.config import ScenarioConfig
    from repro.simnet import FaultProfile
    from repro.verbs import ReliabilityConfig

    KIB = 1024
    VARIANTS = (
        ("wwi", "gobackn"),
        ("wwi", "selective_repeat"),
        ("eager_rendezvous", "gobackn"),
        ("eager_rendezvous", "selective_repeat"),
    )

    def run():
        grid = []
        for pname in ("fdr", "roce-wan"):
            prof = PROFILES[pname]
            rel0 = ReliabilityConfig.for_path(
                prof.propagation_delay_ns + prof.emulator_delay_ns)
            for loss in (0.0, 0.02):
                for size in (512, 8 * KIB, 256 * KIB):
                    msgs = 16 if size >= 256 * KIB else 60
                    cell = {
                        "profile": pname,
                        "loss": loss,
                        "size": size,
                        "throughput_bps": {},
                    }
                    for transport, mode in VARIANTS:
                        scenario = ScenarioConfig(
                            profile=pname, seed=17, transport=transport,
                            faults=FaultProfile(drop_prob=loss) if loss else None,
                            reliability=replace(rel0, mode=mode))
                        cfg = BlastConfig(
                            total_messages=msgs, sizes=FixedSizes(size),
                            recv_buffer_bytes=max(size, 64 * KIB),
                            outstanding_sends=4 if size >= 256 * KIB else 8,
                            outstanding_recvs=8)
                        r = run_blast(cfg, scenario=scenario, max_events=100_000_000)
                        assert r.total_bytes == msgs * size
                        key = f"{transport}/{mode}"
                        cell["throughput_bps"][key] = r.throughput_bps
                    cell["best"] = max(cell["throughput_bps"],
                                       key=cell["throughput_bps"].get)
                    grid.append(cell)
        return grid

    grid = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    benchmark.extra_info["crossover_grid"] = grid

    def cell(pname, loss, size):
        return next(c for c in grid
                    if c["profile"] == pname and c["loss"] == loss and c["size"] == size)

    # shape claims the bake-off established (deterministic, seed-pinned):
    # the zero-copy WWI plane owns large messages on a clean fast link...
    big = cell("fdr", 0.0, 256 * KIB)
    assert big["best"].startswith("wwi")
    # ...while eager SEND-RECV wins tiny messages there (no ADVERT
    # dependency, one control message less per transfer)
    tiny = cell("fdr", 0.0, 512)
    assert tiny["best"].startswith("eager_rendezvous")
    # and under loss, selective repeat never does worse than go-back-N on
    # the same plane (it retransmits a subset of GBN's frames)
    for c in grid:
        if c["loss"] == 0:
            continue
        t = c["throughput_bps"]
        assert t["wwi/selective_repeat"] >= 0.99 * t["wwi/gobackn"]
