"""Ablations of the design choices DESIGN.md calls out.

Each ablation flips one knob the paper's design motivates and checks the
predicted consequence:

* **intermediate-buffer size over distance** — the hidden buffer must cover
  the bandwidth-delay product for indirect transfers to fill a long pipe;
* **copy bandwidth vs wire speed (the QDR remark)** — "In tests on QDR
  InfiniBand, the indirect protocol compares much more favorably in terms
  of throughput" (paper §IV-B1);
* **event-notification wake-up latency** — the receiver-side latency that
  lets a saturating sender outrun ADVERT generation; with instant wakeups
  the dynamic protocol holds the zero-copy path far longer;
* **credit pool size** — a starved credit pool throttles the pipeline but
  must never deadlock it.
"""

import pytest

from conftest import run_once
from repro.apps import BlastConfig, ExponentialSizes, FixedSizes, run_blast
from repro.apps.workloads import MIB
from repro.bench.profiles import FDR_INFINIBAND, QDR_INFINIBAND, ROCE_10G_WAN
from repro.core import ProtocolMode
from repro.exs import ExsSocketOptions


def test_ablation_ring_size_over_wan(benchmark, quality):
    """Indirect throughput over 48 ms RTT scales with the buffer until the
    window (not the buffer) becomes the limit."""

    def run():
        out = []
        for ring_mib in (1, 4, 16, 64):
            cfg = BlastConfig(
                total_messages=max(60, quality.messages // 4),
                sizes=FixedSizes(1 * MIB),
                recv_buffer_bytes=1 * MIB,
                outstanding_sends=16,
                outstanding_recvs=16,
                mode=ProtocolMode.INDIRECT_ONLY,
                options=ExsSocketOptions(ring_capacity=ring_mib * MIB),
            )
            r = run_blast(cfg, ROCE_10G_WAN, seed=1, max_events=100_000_000)
            out.append((ring_mib, r.throughput_bps))
        return out

    rows = run_once(benchmark, run)
    print("\nring size vs indirect WAN throughput:")
    for ring_mib, bps in rows:
        print(f"  {ring_mib:3d} MiB ring: {bps / 1e6:9.1f} Mb/s")
    throughputs = [bps for _r, bps in rows]
    # strictly better with more buffer until the 16-message window binds
    assert throughputs[0] < throughputs[1] < throughputs[2]
    # 16 MiB already covers the 16 x 1 MiB window: growing further is flat
    assert throughputs[3] < throughputs[2] * 1.1


def test_ablation_qdr_closes_the_gap(benchmark, quality):
    """On QDR the wire barely outruns memcpy, so direct's edge collapses."""

    def gap(profile):
        results = {}
        for mode in (ProtocolMode.DIRECT_ONLY, ProtocolMode.INDIRECT_ONLY):
            cfg = BlastConfig(
                total_messages=max(60, quality.messages // 4),
                sizes=ExponentialSizes(seed=17),
                outstanding_sends=8,
                outstanding_recvs=8,
                mode=mode,
            )
            results[mode] = run_blast(cfg, profile, seed=1, max_events=100_000_000)
        return (
            results[ProtocolMode.DIRECT_ONLY].throughput_bps
            / results[ProtocolMode.INDIRECT_ONLY].throughput_bps
        )

    fdr_gap, qdr_gap = run_once(benchmark, lambda: (gap(FDR_INFINIBAND), gap(QDR_INFINIBAND)))
    print(f"\ndirect:indirect throughput ratio — FDR {fdr_gap:.2f}x, QDR {qdr_gap:.2f}x")
    assert fdr_gap > 1.5          # FDR: zero-copy wins big
    assert qdr_gap < fdr_gap      # QDR: much closer...
    assert qdr_gap < 1.25         # ... nearly a tie (the paper's remark)


def test_ablation_wakeup_latency_drives_the_instability(benchmark, quality):
    """The mid-size direct-ratio dip (Fig. 12b's 32 KiB minimum) is driven
    by completion-channel wake-up latency: with (hypothetical) instant
    wake-ups the receiver re-advertises in time at every message and the
    connection never falls back."""

    def ratios_with(lo, hi):
        profile = FDR_INFINIBAND.with_overrides(wakeup_lo_ns=lo, wakeup_hi_ns=hi)
        out = []
        for seed in (1, 2, 3, 4):
            cfg = BlastConfig(
                total_messages=max(600, 2 * quality.messages),
                sizes=FixedSizes(32 * 1024),
                recv_buffer_bytes=32 * 1024,
                outstanding_sends=2,
                outstanding_recvs=4,
                mode=ProtocolMode.DYNAMIC,
            )
            out.append(run_blast(cfg, profile, seed=seed, max_events=100_000_000).direct_ratio)
        return out

    slow, fast = run_once(benchmark, lambda: (ratios_with(2_000, 16_000), ratios_with(0, 1)))
    print(f"\n32 KiB direct ratios — default wakeups {slow}, instant {fast}")
    # instant wake-ups: the zero-copy path never breaks
    assert all(r > 0.99 for r in fast), fast
    # realistic wake-ups: at least one run dips into buffered mode
    assert min(slow) < 0.9, slow


def test_ablation_credit_pool(benchmark, quality):
    """Credits bound the number of in-flight messages.  Two observable
    effects: (1) a tiny pool makes the sender stall on credit return
    (``sender_blocked``) without ever deadlocking or losing data; (2) in
    dynamic mode those stalls *pace* the sender, letting ADVERTs catch up —
    a small pool can accidentally keep the connection on the zero-copy
    path that a large pool loses (flow control interacts with mode choice).
    """

    def run(credits, mode):
        cfg = BlastConfig(
            total_messages=max(60, quality.messages // 5),
            sizes=FixedSizes(256 * 1024),
            recv_buffer_bytes=256 * 1024,
            outstanding_sends=8,
            outstanding_recvs=8,
            mode=mode,
            options=ExsSocketOptions(credits=credits),
        )
        return run_blast(cfg, seed=1, max_events=100_000_000)

    def run_all():
        return (
            run(8, ProtocolMode.DIRECT_ONLY),
            run(256, ProtocolMode.DIRECT_ONLY),
            run(8, ProtocolMode.DYNAMIC),
            run(256, ProtocolMode.DYNAMIC),
        )

    d_tiny, d_big, dyn_tiny, dyn_big = run_once(benchmark, run_all)
    print(f"\ndirect-only : 8 credits {d_tiny.throughput_gbps:.2f} Gb/s "
          f"({d_tiny.tx_stats.sender_blocked} stalls), "
          f"256 credits {d_big.throughput_gbps:.2f} Gb/s "
          f"({d_big.tx_stats.sender_blocked} stalls)")
    print(f"dynamic     : 8 credits {dyn_tiny.throughput_gbps:.2f} Gb/s "
          f"(ratio {dyn_tiny.direct_ratio:.2f}), "
          f"256 credits {dyn_big.throughput_gbps:.2f} Gb/s "
          f"(ratio {dyn_big.direct_ratio:.2f})")

    # (1) correctness and stall accounting: the tiny pool stalls the sender
    # far more often (sender_blocked also counts ordinary waiting-for-ADVERT
    # pauses, hence the relative comparison) but loses nothing
    assert d_tiny.total_bytes == d_big.total_bytes
    assert d_tiny.tx_stats.sender_blocked > 3 * max(1, d_big.tx_stats.sender_blocked)
    assert d_tiny.throughput_bps <= d_big.throughput_bps * 1.02
    # (2) the pacing interaction in dynamic mode
    assert dyn_tiny.direct_ratio > dyn_big.direct_ratio


def test_ablation_small_ring_reproduces_table3_flip_flop(benchmark, quality):
    """The paper's Table III (1,1) cell reports 93 +/- 86 mode switches —
    constant flip-flopping between modes.  With the default 16 MiB buffer
    the simulation shows a single sticky switch instead; shrinking the
    buffer below the typical message size recreates the flip-flop regime
    (each message fills the buffer, the receiver drains it to empty, and a
    resync ADVERT races the next send).  This strongly suggests the real
    UNH EXS intermediate buffer was small relative to its 1 MiB-mean
    messages; see EXPERIMENTS.md."""

    def switches_with(ring_bytes):
        out = []
        for seed in (1, 2):
            cfg = BlastConfig(
                total_messages=max(120, quality.messages // 2),
                sizes=ExponentialSizes(seed=40 + seed),
                outstanding_sends=1,
                outstanding_recvs=1,
                mode=ProtocolMode.DYNAMIC,
                options=ExsSocketOptions(ring_capacity=ring_bytes),
            )
            out.append(run_blast(cfg, seed=seed, max_events=200_000_000).mode_switches)
        return out

    big, small = run_once(
        benchmark, lambda: (switches_with(16 * MIB), switches_with(64 * 1024))
    )
    print(f"\n(1,1) mode switches: 16 MiB ring {big}, 64 KiB ring {small}")
    assert all(s_ <= 3 for s_ in big)
    assert all(s_ > 20 for s_ in small)  # the paper's flip-flop regime
