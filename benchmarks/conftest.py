"""Shared infrastructure for the reproduction benchmarks.

Every benchmark regenerates one table or figure from the paper, prints the
series (the data behind the plot), and asserts the paper's *shape* claims —
who wins, by roughly what factor, where crossovers fall.  Absolute numbers
are simulator-calibrated, not testbed-identical (see EXPERIMENTS.md).

Run with ``pytest benchmarks/ --benchmark-only``.  Scale with
``REPRO_BENCH_QUALITY={smoke,quick,paper}`` (default: quick).
"""

from __future__ import annotations

import sys

import pytest

sys.path.insert(0, "tests")  # reuse test helpers when run standalone

from repro.bench.experiment import QUICK, quality_from_env
from repro.sweep import processes_from_env


@pytest.fixture(scope="session")
def quality():
    return quality_from_env(default=QUICK)


@pytest.fixture(scope="session")
def processes():
    """Sweep worker processes (``REPRO_SWEEP_PROCESSES``; default serial).

    Simulated results are bit-identical for any value — parallelism only
    changes wall-clock time.  Benchmarked *durations* are of course only
    comparable across runs using the same setting.
    """
    return processes_from_env(default=1)


def run_once(benchmark, fn):
    """Run *fn* exactly once under pytest-benchmark and return its result.

    The simulations are deterministic and long; statistical repetition adds
    nothing (the interesting statistics are the paper-style mean±CI across
    seeds *inside* each run).
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
